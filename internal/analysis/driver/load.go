// Package driver loads type-checked packages and executes schedlint
// analyzers over them, in two modes: a standalone loader built on
// `go list -deps -export` (the `schedlint ./...` CLI and the in-repo
// self-clean test), and the `go vet -vettool` unitchecker protocol
// (unitchecker.go). Both modes share the same Pass construction, fact
// plumbing and //schedlint:ignore suppression, so a diagnostic means
// the same thing no matter how the tool was invoked.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Module describes the main module of a load.
type Module struct {
	Path string
	Dir  string
}

// Load runs `go list -deps -export` for the patterns in dir, parses
// and type-checks every package of the main module from source (in
// dependency order, so facts flow bottom-up), and resolves all other
// imports through their compiled export data. The returned packages
// are in dependency order.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, *Module, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	var mod *Module
	for _, m := range metas {
		if m.Module != nil && m.Module.Main {
			mod = &Module{Path: m.Module.Path, Dir: m.Module.Dir}
			break
		}
	}
	if mod == nil {
		return nil, nil, nil, fmt.Errorf("schedlint: no main-module package matches %v", patterns)
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	imp := newSourceImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, m := range metas {
		inMain := m.Module != nil && m.Module.Main
		if !inMain {
			continue // deps resolve through export data on demand
		}
		var files []*ast.File
		var names []string
		for _, f := range m.GoFiles {
			names = append(names, m.Dir+"/"+f)
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			return nil, nil, nil, err
		}
		pkg, info, err := typecheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("schedlint: %s: %w", m.ImportPath, err)
		}
		imp.checked[m.ImportPath] = pkg
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath,
			Dir:     m.Dir,
			Files:   files,
			Types:   pkg,
			Info:    info,
		})
	}
	return pkgs, fset, mod, nil
}

// listMeta is the subset of `go list -json` output the loader needs.
type listMeta struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
}

func goList(dir string, patterns []string) ([]*listMeta, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("schedlint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var metas []*listMeta
	dec := json.NewDecoder(&out)
	for dec.More() {
		m := new(listMeta)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("schedlint: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// sourceImporter resolves module packages to their source-checked
// *types.Package (so type identity is shared across the whole load)
// and everything else through gc export data.
type sourceImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func newSourceImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) *sourceImporter {
	return &sourceImporter{
		checked: make(map[string]*types.Package),
		gc:      importer.ForCompiler(fset, "gc", lookup),
	}
}

func (si *sourceImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.checked[path]; ok {
		return p, nil
	}
	return si.gc.Import(path)
}

func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExportsFor resolves export-data files for the given import paths
// (and their dependencies) by running `go list -deps -export` from
// dir. The analysistest fixture loader uses it to type-check fixture
// imports of the standard library without a module context of its own.
func ExportsFor(dir string, imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	metas, err := goList(dir, imports)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	return exports, nil
}

// moduleOf walks up from dir to the enclosing go.mod, returning the
// module root ("" when none is found). The unitchecker path uses it to
// locate repository files (docs/METRICS.md) from a package directory.
func moduleOf(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(d + "/go.mod"); err == nil {
			return d
		}
		parent := strings.TrimRight(d[:len(d)-len(baseName(d))], "/")
		if parent == "" || parent == d {
			return ""
		}
		d = parent
	}
}

func baseName(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
