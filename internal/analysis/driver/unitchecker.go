package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// VetConfig mirrors the JSON compilation-unit description `go vet`
// hands a -vettool for every package it analyzes (the unitchecker
// protocol; see $GOROOT/src/cmd/go/internal/work/exec.go
// buildVetConfig). Fields the suite does not consume are listed for
// documentation but decode harmlessly.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitcheck implements one `go vet -vettool` invocation: read the
// config, analyze the unit, write the facts output, print diagnostics
// to stderr. The returned exit code follows the vet convention: 0
// clean, 1 diagnostics found, 2 operational failure.
//
// Packages outside the main module (the standard library and, in
// future, vendored deps) are fast-pathed: go vet drives the tool over
// every dependency in VetxOnly mode to give fact-using analyzers a
// chance, but every schedlint invariant is scoped to this module, so
// for foreign packages the tool writes an empty fact file without
// even parsing them — this keeps `go vet -vettool=schedlint ./...`
// within the same order of cost as plain `go vet`.
func Unitcheck(configFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(configFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}

	inModule := cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
	if !inModule {
		if err := writeVetx(cfg.VetxOutput, nil); err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	imp := vetImporter(fset, cfg)
	pkg, info, err := typecheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}

	// Import facts: every dependency's vetx file holds that package's
	// own facts merged with its imports' (see below), so the union over
	// direct deps covers the transitive closure.
	imported := make(map[string]map[string]string)
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // no facts from that dep
		}
		var m map[string]map[string]string
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		for p, facts := range m {
			dst := imported[p]
			if dst == nil {
				dst = make(map[string]string, len(facts))
				imported[p] = dst
			}
			for k, v := range facts {
				dst[k] = v
			}
		}
	}

	mod := &Module{Path: cfg.ModulePath, Dir: moduleOf(cfg.Dir)}
	store := make(FactStore)
	for p, m := range imported {
		store[p] = m
	}
	loaded := &Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: pkg, Info: info}
	findings, err := runOne(analyzers, loaded, fset, mod, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}

	// Re-export: own facts plus everything imported, so facts reach
	// indirect dependents whose PackageVetx lists only direct deps.
	// Facts are keyed under the unit's ImportPath, which for a test
	// variant carries a " [pkg.test]" suffix — strip it so dependents
	// find the facts under the plain package path.
	exportPath := cfg.ImportPath
	if i := strings.Index(exportPath, " ["); i >= 0 {
		exportPath = exportPath[:i]
	}
	out := map[string]map[string]string{}
	for p, m := range imported {
		out[p] = m
	}
	if own := store[cfg.ImportPath]; len(own) > 0 {
		merged := out[exportPath]
		if merged == nil {
			merged = make(map[string]string, len(own))
			out[exportPath] = merged
		}
		for k, v := range own {
			merged[k] = v
		}
	}
	if err := writeVetx(cfg.VetxOutput, out); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}

	if cfg.VetxOnly || len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 1
}

func readVetConfig(name string) (*VetConfig, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", name, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no Go files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func writeVetx(name string, facts map[string]map[string]string) error {
	if name == "" {
		return nil
	}
	data := []byte("{}")
	if len(facts) > 0 {
		var err error
		data, err = json.Marshal(facts)
		if err != nil {
			return err
		}
	}
	return os.WriteFile(name, data, 0o666)
}

// vetImporter resolves imports through the export data files the
// build system supplies in the vet config.
func vetImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	si := newSourceImporter(fset, lookup)
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		return si.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
