package driver_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// loadSrc typechecks one import-free source string into a driver
// package.
func loadSrc(t *testing.T, src string) (*driver.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &driver.Package{PkgPath: "p", Files: []*ast.File{f}, Types: pkg, Info: info}, fset
}

// probe reports one diagnostic per package-level var declaration: a
// minimal analyzer to exercise the driver's suppression machinery.
var probe = &analysis.Analyzer{
	Name: "probe",
	Doc:  "flag every package-level var (test probe)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				pass.Reportf(gd.Pos(), "probe: package-level var")
			}
		}
		return nil
	},
}

// TestBareIgnoreReported: an ignore directive without a justification
// is itself a finding, attributed to the suite rather than an
// analyzer, and suppresses nothing.
func TestBareIgnoreReported(t *testing.T) {
	pkg, fset := loadSrc(t, `package p

//schedlint:ignore
var x = 1
`)
	findings, err := driver.RunPackages([]*analysis.Analyzer{probe}, []*driver.Package{pkg}, fset, &driver.Module{Path: "p", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (bare ignore + unsuppressed probe): %v", len(findings), findings)
	}
	var sawBare, sawProbe bool
	for _, f := range findings {
		if f.Analyzer == "schedlint" && strings.Contains(f.Message, "requires a justification") {
			sawBare = true
		}
		if f.Analyzer == "probe" {
			sawProbe = true
		}
	}
	if !sawBare || !sawProbe {
		t.Fatalf("missing expected findings (bare=%v probe=%v): %v", sawBare, sawProbe, findings)
	}
}

// TestJustifiedIgnoreSuppresses: a justified ignore on (or above) the
// flagged line suppresses the diagnostic.
func TestJustifiedIgnoreSuppresses(t *testing.T) {
	pkg, fset := loadSrc(t, `package p

//schedlint:ignore test: audited
var x = 1

var y = 2
`)
	findings, err := driver.RunPackages([]*analysis.Analyzer{probe}, []*driver.Package{pkg}, fset, &driver.Module{Path: "p", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Pos.Line != 6 {
		t.Fatalf("want exactly the unignored var y flagged at line 6, got: %v", findings)
	}
}
