package driver

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/analysis"
)

// A Finding is one diagnostic attributed to its analyzer and package.
type Finding struct {
	Analyzer string
	PkgPath  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// FactStore accumulates per-package facts across a standalone run.
// Facts are keyed by package path, then fact key; a package's visible
// facts are those of every package loaded before it (the loader
// returns dependency order, so that is exactly its transitive
// imports, plus unrelated earlier packages whose facts are harmless).
type FactStore map[string]map[string]string

// RunPackages executes every analyzer over every loaded package,
// applying //schedlint:ignore suppression, and returns the surviving
// findings sorted by position. The fact store is shared across
// packages in load (dependency) order.
func RunPackages(analyzers []*analysis.Analyzer, pkgs []*Package, fset *token.FileSet, mod *Module) ([]Finding, error) {
	store := make(FactStore)
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := runOne(analyzers, pkg, fset, mod, store)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}

func runOne(analyzers []*analysis.Analyzer, pkg *Package, fset *token.FileSet, mod *Module, store FactStore) ([]Finding, error) {
	imported := store.snapshot(pkg.PkgPath)
	own := store.pkg(pkg.PkgPath)
	ignores, bare := analysis.Ignores(fset, pkg.Files)

	var findings []Finding
	for _, d := range bare {
		findings = append(findings, Finding{
			Analyzer: "schedlint",
			PkgPath:  pkg.PkgPath,
			Pos:      fset.Position(d.Pos),
			Message:  d.Message,
		})
	}

	modPath, modDir := "", ""
	if mod != nil {
		modPath, modDir = mod.Path, mod.Dir
	}
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ModulePath: modPath,
			ModuleDir:  modDir,
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
			ExportFact: func(k, v string) { own[k] = v },
			ImportedFacts: func() map[string]map[string]string {
				return imported
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("schedlint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		analysis.SortDiagnostics(fset, diags)
		for _, d := range diags {
			if ignores.Covers(d.Pos) {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				PkgPath:  pkg.PkgPath,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	return findings, nil
}

// pkg returns (creating if needed) the fact map of one package.
func (s FactStore) pkg(path string) map[string]string {
	m, ok := s[path]
	if !ok {
		m = make(map[string]string)
		s[path] = m
	}
	return m
}

// snapshot copies the store's current contents, excluding self: the
// facts visible to a package mid-load.
func (s FactStore) snapshot(self string) map[string]map[string]string {
	out := make(map[string]map[string]string, len(s))
	for p, m := range s {
		if p == self {
			continue
		}
		cp := make(map[string]string, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[p] = cp
	}
	return out
}
