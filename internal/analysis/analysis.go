// Package analysis is the repository's static-analysis framework: a
// deliberately small, stdlib-only re-implementation of the
// golang.org/x/tools go/analysis surface that the schedlint analyzers
// (hotpath, puredecide, stridepad, atomicmix, metricsync) are written
// against.
//
// Why not depend on x/tools: the repository builds with the bare Go
// toolchain and no third-party modules, and the analyzers here need
// only a fraction of the upstream API — per-package AST+types passes,
// line-scoped suppression directives, and a string-valued fact store
// for the cross-package checks. Keeping the framework in-tree keeps
// `go build ./...` hermetic and makes the analyzer contract (the
// annotation grammar below) a reviewed part of this codebase rather
// than an external dependency's behavior.
//
// # Annotation grammar
//
// Annotations are directive comments (no space after //), documented
// in docs/LINT.md:
//
//	//schedlint:hotpath   on a function: its body and every statically
//	                      resolvable callee within the module must be
//	                      free of allocating constructs.
//	//schedlint:padded    on a struct type: its size must be a multiple
//	                      of the 128-byte anti-false-sharing stride,
//	                      and its 8-byte atomic fields must stay 8-byte
//	                      aligned on 32-bit targets.
//	//schedlint:ignore reason
//	                      on (or immediately above) a flagged line:
//	                      suppresses schedlint diagnostics for that
//	                      line. The reason is mandatory — an ignore
//	                      without a justification is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one schedlint analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description `schedlint help` prints.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and the reporting/fact plumbing supplied by the driver.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ModulePath is the main module's path ("" when unknown, e.g. in
	// analysistest fixtures — analyzers then treat every package as
	// in-module).
	ModulePath string
	// ModuleDir is the main module's root directory, for analyzers
	// that consult repository files (metricsync reads
	// docs/METRICS.md). Empty when unknown.
	ModuleDir string

	// Report emits one diagnostic. The driver applies
	// //schedlint:ignore suppression after the analyzer returns.
	Report func(Diagnostic)

	// ExportFact publishes a package-scoped fact for downstream
	// packages; ImportedFacts returns the facts of every (transitively)
	// imported package, keyed by package path then fact key.
	ExportFact    func(key, value string)
	ImportedFacts func() map[string]map[string]string
}

// Reportf formats and emits one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InModule reports whether pkgPath belongs to the module under
// analysis. With no known module path every package is in scope (the
// fixture case).
func (p *Pass) InModule(pkgPath string) bool {
	if p.ModulePath == "" {
		return true
	}
	return pkgPath == p.ModulePath || strings.HasPrefix(pkgPath, p.ModulePath+"/")
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Directive names understood by the suite.
const (
	DirHotpath = "hotpath"
	DirPadded  = "padded"
	DirIgnore  = "ignore"
)

const directivePrefix = "//schedlint:"

// Directive is one parsed //schedlint: comment.
type Directive struct {
	Pos  token.Pos
	Name string // "hotpath", "padded", "ignore", ...
	Args string // the rest of the line, trimmed
}

// ParseDirective parses a single comment; ok is false when the comment
// is not a schedlint directive. Directive comments follow the Go
// convention: no space between // and the directive word.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Pos: c.Pos(), Name: name, Args: strings.TrimSpace(args)}, true
}

// HasDirective reports whether the comment group carries the named
// schedlint directive.
func HasDirective(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if d, ok := ParseDirective(c); ok && d.Name == name {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether fn's doc comment carries the named
// directive.
func FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	return HasDirective(fn.Doc, name)
}

// TypeSpecHasDirective reports whether the type's doc (on the spec or
// its enclosing GenDecl) carries the named directive.
func TypeSpecHasDirective(decl *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	return HasDirective(spec.Doc, name) || HasDirective(spec.Comment, name) ||
		(decl != nil && len(decl.Specs) == 1 && HasDirective(decl.Doc, name))
}

// An IgnoreSet records, per file and line, the //schedlint:ignore
// directives of a package: a diagnostic is suppressed when its line —
// or the line immediately below an ignore comment standing on its own
// line — is covered by a directive with a non-empty justification.
type IgnoreSet struct {
	fset *token.FileSet
	// byLine maps filename:line to the directive covering that line.
	byLine map[string]Directive
}

// Ignores builds the IgnoreSet of the given files. Ignore directives
// with an empty justification are returned separately so the driver
// can report them: suppression without a recorded reason defeats the
// audit trail the directive exists to create.
func Ignores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Diagnostic) {
	is := &IgnoreSet{fset: fset, byLine: make(map[string]Directive)}
	var bare []Diagnostic
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := ParseDirective(c)
				if !ok || d.Name != DirIgnore {
					continue
				}
				if d.Args == "" {
					bare = append(bare, Diagnostic{
						Pos:     d.Pos,
						Message: "schedlint:ignore requires a justification (//schedlint:ignore <reason>)",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				// The directive covers its own line; a directive that
				// is the only thing on its line also covers the next
				// line, so it can sit above the code it excuses.
				is.byLine[key(pos.Filename, pos.Line)] = d
				is.byLine[key(pos.Filename, pos.Line+1)] = d
			}
		}
	}
	return is, bare
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// Covers reports whether a diagnostic at pos is suppressed.
func (is *IgnoreSet) Covers(pos token.Pos) bool {
	if is == nil || !pos.IsValid() {
		return false
	}
	p := is.fset.Position(pos)
	_, ok := is.byLine[key(p.Filename, p.Line)]
	return ok
}

// IgnoredLines exposes the covered file:line set — the hotpath
// analyzer consults it during fact computation so an audited
// (ignore-annotated) allocation site does not poison the containing
// function's safety fact for cross-package callers.
func (is *IgnoreSet) IgnoredLines() map[string]bool {
	out := make(map[string]bool, len(is.byLine))
	for k := range is.byLine {
		out[k] = true
	}
	return out
}

// SortDiagnostics orders diagnostics by position for deterministic
// output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Message < ds[j].Message
	})
}

// NamedTypePath returns the package path and type name of t's core
// named type, unwrapping pointers; ok is false for unnamed types.
func NamedTypePath(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}
