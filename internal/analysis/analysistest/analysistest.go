// Package analysistest runs schedlint analyzers over fixture packages
// and checks their diagnostics against // want comments, in the style
// of golang.org/x/tools/go/analysis/analysistest (stdlib-only, like
// the framework it tests).
//
// Fixture layout: <testdata>/src/fix/<pkg>/*.go, imported as
// "fix/<pkg>". Fixtures run with module path "fix", so imports among
// fixture packages exercise the cross-package fact plumbing while
// standard-library imports resolve through the real toolchain's
// export data. The fixture module root <testdata>/src/fix is also the
// Pass.ModuleDir, so analyzers that read repository files (metricsync
// and docs/METRICS.md) see a fixture-local copy.
//
// Expectations: a comment of the form
//
//	// want "regexp" "another regexp"
//
// on a source line declares that exactly those diagnostics (matched by
// unanchored regexp, any analyzer) are reported on that line. Every
// diagnostic must be wanted and every want must fire, across all
// loaded fixture packages — dependencies included, so a fixture
// dependency can carry expectations of its own.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// FixtureModule is the module path fixture packages live under.
const FixtureModule = "fix"

// TestData returns the calling test's testdata directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads the named fixture packages (plus their fixture
// dependencies), runs the analyzers over them in dependency order, and
// reports every mismatch between diagnostics and // want comments as a
// test error.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		testdata: testdata,
		fset:     fset,
		parsed:   make(map[string][]*ast.File),
		order:    nil,
	}
	for _, p := range pkgPaths {
		if err := ld.load(p); err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
	}

	// Resolve the standard-library imports the fixtures use through
	// the real toolchain, from the enclosing module (any directory
	// with a go.mod works for `go list`).
	exports, err := driver.ExportsFor(moduleRoot(), ld.stdlib())
	if err != nil {
		t.Fatalf("resolving fixture stdlib imports: %v", err)
	}

	pkgs, err := ld.typecheck(exports)
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}

	mod := &driver.Module{Path: FixtureModule, Dir: filepath.Join(testdata, "src", FixtureModule)}
	findings, err := driver.RunPackages(analyzers, pkgs, fset, mod)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	check(t, fset, ld, findings)
}

// loader accumulates fixture packages in dependency order.
type loader struct {
	testdata string
	fset     *token.FileSet
	parsed   map[string][]*ast.File // fixture pkg path -> files
	order    []string
	std      map[string]bool
}

func (ld *loader) dirOf(pkgPath string) string {
	return filepath.Join(ld.testdata, "src", filepath.FromSlash(pkgPath))
}

func (ld *loader) load(pkgPath string) error {
	if _, done := ld.parsed[pkgPath]; done {
		return nil
	}
	dir := ld.dirOf(pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files in %s", dir)
	}
	ld.parsed[pkgPath] = files // mark before recursing (cycles fail in typecheck)
	for _, f := range files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if strings.HasPrefix(path, FixtureModule+"/") {
				if err := ld.load(path); err != nil {
					return err
				}
			} else {
				if ld.std == nil {
					ld.std = make(map[string]bool)
				}
				ld.std[path] = true
			}
		}
	}
	ld.order = append(ld.order, pkgPath) // post-order: dependencies first
	return nil
}

func (ld *loader) stdlib() []string {
	var out []string
	for p := range ld.std {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (ld *loader) typecheck(exports map[string]string) ([]*driver.Package, error) {
	checked := make(map[string]*types.Package)
	gc := importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return gc.Import(path)
	})
	var pkgs []*driver.Package
	for _, pkgPath := range ld.order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
			Scopes:     make(map[ast.Node]*types.Scope),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
		pkg, err := conf.Check(pkgPath, ld.fset, ld.parsed[pkgPath], info)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		checked[pkgPath] = pkg
		pkgs = append(pkgs, &driver.Package{
			PkgPath: pkgPath,
			Dir:     ld.dirOf(pkgPath),
			Files:   ld.parsed[pkgPath],
			Types:   pkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one // want regexp, positioned at its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func check(t *testing.T, fset *token.FileSet, ld *loader, findings []driver.Finding) {
	t.Helper()
	var wants []*expectation
	for _, files := range ld.parsed {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, raw := range splitQuoted(m[1]) {
						pat, err := strconv.Unquote(raw)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
							continue
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the double-quoted or backquoted segments of a
// want comment's tail.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod — the module whose toolchain context resolves stdlib export
// data for fixtures.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
