// Package all registers the complete schedlint analyzer suite, in the
// order diagnostics should be grouped when several fire on one line.
package all

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/metricsync"
	"repro/internal/analysis/puredecide"
	"repro/internal/analysis/stridepad"
)

// Analyzers is the suite cmd/schedlint runs and CI enforces.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpath.Analyzer,
		puredecide.Analyzer,
		stridepad.Analyzer,
		atomicmix.Analyzer,
		metricsync.Analyzer,
	}
}
