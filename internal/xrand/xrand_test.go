package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Golden values for seed 1234567, pinned so that any change to the
	// generator (which would silently change every experiment) fails loudly.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if g := sm.Next(); g != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed generators matched %d/1000 outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		if v := r.Float64Open(); v <= 0 || v > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	const draws = 200000
	for _, p := range []float64{0.0, 0.1, 0.5, 0.9, 1.0} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(21)
	const n, draws = 5, 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		a := [n]int{0, 1, 2, 3, 4}
		r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d first with count %d, want about %.0f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams matched %d/1000 outputs", same)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(512)
	}
	_ = sink
}
