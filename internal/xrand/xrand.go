// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// The experiments in the paper depend on randomization in several places:
// edge sampling for Erdős–Rényi graphs, uniform edge weights, the random
// in-window offset of the centralized k-priority push, victim selection for
// stealing and spying, and the shuffling of newly activated nodes in the
// phase simulator. All of these need independent, seedable streams so that
// experiment runs are reproducible. math/rand/v2 would work, but a local
// implementation keeps the repository self-contained, allocation-free and
// lets every place own an unshared generator (no locking, no false sharing).
package xrand

import "math/bits"

// SplitMix64 is the seed-expansion generator recommended by Vigna for
// initializing xoshiro state. It is also a perfectly usable generator on
// its own for non-adversarial workloads.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ generator. It is not safe for concurrent use;
// callers own one generator per goroutine/place.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended
// by the xoshiro authors. Any seed value, including zero, is valid.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro256++ requires a non-zero state; SplitMix64 cannot emit four
	// consecutive zeros, so this is unreachable, but cheap to guard.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next 64-bit value in the stream.
func (r *Rand) Uint64() uint64 {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	result := bits.RotateLeft64(s0+s3, 23) + s0

	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)

	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in (0, 1]. The paper assigns edge
// weights uniformly in ]0, 1]; a weight of exactly zero would let paths of
// unbounded length have zero cost, which both the theory (Lemma 1) and
// Dijkstra's termination argument exclude.
func (r *Rand) Float64Open() float64 {
	return 1.0 - r.Float64()
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Shuffle pseudo-randomly permutes elements [0,n) using swap, Fisher–Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Split returns a new generator whose stream is independent of r's
// subsequent output. It is used to derive per-place and per-graph streams
// from a single experiment seed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}
