// Package simtest is the deterministic, virtual-clock simulation
// harness for the backpressure controller — the backpressure analogue
// of internal/adapt/simtest, built on the same template: script load
// phases, model the plant's response to the knob, assert the trace.
//
// The plant models the serve pipeline the scheduler wires the
// controller into: per window, scripted arrival groups (a count of
// tasks at a priority) hit the admission gate at the threshold in
// force; admitted tasks join the structure's backlog, gated tasks are
// parked in a real backpressure.Spillway until it is full and shed
// afterwards; a fixed service capacity drains the backlog; at the
// window's end the controller samples the cumulative counters and
// decides, and ReadmitQuota moves spilled tasks back into the backlog
// exactly as the scheduler's controller tick does.
//
// Everything is integer/float arithmetic on scripted inputs: no clocks,
// no randomness, so a replay is bit-identical run to run and the suite
// can assert the overload story end to end — the admission bar rises
// (the threshold cutoff falls) under overload, the protected band is
// never shed, and the spillway drains on recovery.
package simtest

import (
	"fmt"
	"time"

	"repro/internal/backpressure"
)

// Group is one scripted arrival class: Count tasks per window at
// priority Prio.
type Group struct {
	Prio  int64
	Count int64
}

// Load models the plant for one phase.
type Load struct {
	// Arrivals lists the per-window arrival groups.
	Arrivals []Group
	// ServiceRate is the number of tasks the workers execute per window.
	ServiceRate int64
	// RankErrP99 is the plant's simulated rank-error signal (< 0 for
	// "no signal"; the controller then polices depth only).
	RankErrP99 float64
}

// Phase is one scripted segment of the replay.
type Phase struct {
	Name    string
	Windows int
	Load    Load
}

// WindowResult is one window of the trace: the phase it belongs to, the
// controller's decision record, and the plant's occupancies after the
// window.
type WindowResult struct {
	Phase   string
	Window  backpressure.Window
	Backlog int64 // structure depth after the window
	Spill   int64 // spillway occupancy after the window
}

// Result is the full replay trace plus per-priority admission totals,
// which is what the protection assertions read.
type Result struct {
	Windows []WindowResult
	Final   backpressure.State
	// AdmittedByPrio / DeferredByPrio / ShedByPrio total each arrival
	// group's outcomes over the whole replay, keyed by Group.Prio.
	AdmittedByPrio map[int64]int64
	DeferredByPrio map[int64]int64
	ShedByPrio     map[int64]int64
	// Readmitted is the total number of spilled tasks re-fed.
	Readmitted int64
}

// Run replays the scripted phases against a fresh controller (starting
// fully open) and a fresh spillway sized by cfg.SpillCap. The virtual
// clock advances one cfg.Interval per window; the plant's counters
// accumulate across phases exactly like a real scheduler's do.
func Run(cfg backpressure.Config, phases []Phase) (Result, error) {
	ctrl, err := backpressure.NewController(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = ctrl.Config()
	spill := backpressure.NewSpillway[int64](cfg.SpillCap)
	res := Result{
		AdmittedByPrio: map[int64]int64{},
		DeferredByPrio: map[int64]int64{},
		ShedByPrio:     map[int64]int64{},
	}
	var (
		cum     backpressure.Cumulative
		backlog int64
		window  int
	)
	for _, ph := range phases {
		if ph.Windows < 1 {
			return Result{}, fmt.Errorf("simtest: phase %q has %d windows", ph.Name, ph.Windows)
		}
		if ph.Load.ServiceRate < 0 {
			return Result{}, fmt.Errorf("simtest: phase %q has a negative service rate", ph.Name)
		}
		for _, g := range ph.Load.Arrivals {
			if g.Count < 0 || g.Prio < 0 || g.Prio > cfg.MaxPrio {
				return Result{}, fmt.Errorf("simtest: phase %q group %+v outside the domain", ph.Name, g)
			}
		}
		for w := 0; w < ph.Windows; w++ {
			window++
			gate := ctrl.State()

			// Admission: every arrival faces the threshold in force.
			for _, g := range ph.Load.Arrivals {
				for i := int64(0); i < g.Count; i++ {
					switch {
					case gate.Admits(g.Prio):
						backlog++
						cum.Admitted++
						res.AdmittedByPrio[g.Prio]++
					case spill.Offer(g.Prio):
						cum.Deferred++
						res.DeferredByPrio[g.Prio]++
					default:
						cum.Shed++
						res.ShedByPrio[g.Prio]++
					}
				}
			}

			// Service: the workers drain up to the capacity.
			executed := backlog
			if executed > ph.Load.ServiceRate {
				executed = ph.Load.ServiceRate
			}
			backlog -= executed
			cum.Executed += executed

			cum.Pending = backlog + int64(spill.Len())
			cum.Spill = int64(spill.Len())
			cum.RankErrP99 = ph.Load.RankErrP99

			rec := ctrl.Step(time.Duration(window)*cfg.Interval, cum)

			// Readmission: exactly the scheduler's tick-time behavior —
			// the quota the closed window allows moves the oldest spilled
			// tasks back into the structure.
			if q := backpressure.ReadmitQuota(cfg, rec.Sample); q > 0 {
				got := spill.DrainUpTo(int(q))
				backlog += int64(len(got))
				cum.Readmitted += int64(len(got))
				res.Readmitted += int64(len(got))
			}

			res.Windows = append(res.Windows, WindowResult{
				Phase:   ph.Name,
				Window:  rec,
				Backlog: backlog,
				Spill:   int64(spill.Len()),
			})
		}
	}
	res.Final = ctrl.State()
	return res, nil
}

// StandardConfig is the canonical harness configuration: a 2^20
// priority domain, the most urgent 1/8 protected, a sojourn budget of
// five windows, and a small spillway so sustained overload actually
// sheds.
func StandardConfig() backpressure.Config {
	return backpressure.Config{
		MaxPrio:       1<<20 - 1,
		ProtectedBand: 1 << 17,
		SojournBudget: 50 * time.Millisecond,
		Interval:      10 * time.Millisecond,
		SpillCap:      512,
		ReadmitChunk:  128,
	}
}

// StandardPhases is the canonical underload → overload → recovery
// script: a well-provisioned lead-in the gate must leave alone, a 2×
// overload whose arrivals span the whole priority domain (the
// controller must tighten and the protected groups must still all get
// through), and a light recovery tail in which the spillway must drain
// and the threshold reopen.
func StandardPhases() []Phase {
	// Priorities: two protected groups (inside 2^17), three above.
	mixed := func(scale int64) []Group {
		return []Group{
			{Prio: 1 << 10, Count: scale},
			{Prio: 1 << 16, Count: scale},
			{Prio: 1 << 18, Count: 2 * scale},
			{Prio: 1 << 19, Count: 3 * scale},
			{Prio: 900_000, Count: 3 * scale},
		}
	}
	return []Phase{
		// 100 arrivals vs capacity 1000: deep underload.
		{Name: "underload", Windows: 20, Load: Load{Arrivals: mixed(10), ServiceRate: 1000, RankErrP99: -1}},
		// 2000 arrivals vs capacity 1000: sustained 2× overload.
		{Name: "overload", Windows: 40, Load: Load{Arrivals: mixed(200), ServiceRate: 1000, RankErrP99: -1}},
		// Light traffic again: the backlog and spillway must drain.
		{Name: "recovery", Windows: 40, Load: Load{Arrivals: mixed(10), ServiceRate: 1000, RankErrP99: -1}},
	}
}
