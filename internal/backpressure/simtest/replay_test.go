package simtest

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// burstyPhases is a bursty-overload incident script: saturating bursts
// with idle gaps between them, then a recovery tail. Each burst is a
// 4× overload, so the gate must tighten inside every burst and reopen
// across the gaps.
func burstyPhases() []Phase {
	burst := Load{
		Arrivals: []Group{
			{Prio: 1 << 10, Count: 400},
			{Prio: 1 << 18, Count: 1600},
			{Prio: 900_000, Count: 2000},
		},
		ServiceRate: 1000,
		RankErrP99:  -1,
	}
	idle := Load{ServiceRate: 1000, RankErrP99: -1}
	return []Phase{
		{Name: "warmup", Windows: 10, Load: Load{Arrivals: []Group{{Prio: 1 << 16, Count: 100}}, ServiceRate: 1000, RankErrP99: -1}},
		{Name: "burst1", Windows: 15, Load: burst},
		{Name: "gap1", Windows: 10, Load: idle},
		{Name: "burst2", Windows: 15, Load: burst},
		{Name: "gap2", Windows: 10, Load: idle},
		{Name: "recovery", Windows: 30, Load: Load{Arrivals: []Group{{Prio: 1 << 16, Count: 100}}, ServiceRate: 1000, RankErrP99: -1}},
	}
}

// TestReplayCaptureBitIdentical is the plant-level half of the
// incident-replay contract: a recorded bursty-overload session, read
// back from its JSONL capture and re-run through a real controller via
// ReplayWindows, reproduces the captured BackpressureTrace
// bit-identically — Step's own snapshot diffing included, not just the
// pure Decide chain.
func TestReplayCaptureBitIdentical(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	cfg := StandardConfig()
	res, err := RunRecorded(cfg, burstyPhases(), rec)
	if err != nil {
		t.Fatal(err)
	}

	// The incident must actually be an incident: the gate tightened.
	tightened := false
	for _, w := range res.Windows {
		if w.Window.State.Threshold < cfg.MaxPrio {
			tightened = true
			break
		}
	}
	if !tightened {
		t.Fatal("bursty script never tightened the threshold")
	}

	c, err := obs.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.Source != "simtest" {
		t.Fatalf("capture source = %q, want simtest", c.Header.Source)
	}
	if c.End == nil {
		t.Fatal("capture was not sealed")
	}
	if len(c.BP) != len(res.Windows) {
		t.Fatalf("capture has %d windows, plant produced %d", len(c.BP), len(res.Windows))
	}

	replayed, err := ReplayCapture(c)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := obs.DiffBackpressure(replayed, c.BP); len(diffs) != 0 {
		t.Fatalf("plant replay diverges from capture (%d windows), first:\n%s", len(diffs), diffs[0])
	}

	// And against the live plant trace directly, not just the capture's
	// rendering of it: JSONL round-trip plus replay is end-to-end exact.
	for i, w := range res.Windows {
		if replayed[i] != w.Window {
			t.Fatalf("replayed[%d] = %+v, live plant window = %+v", i, replayed[i], w.Window)
		}
	}
}

// TestReplayCaptureRejectsMissingConfig pins the error path: a capture
// without a cfg_bp record cannot be replayed through this plant.
func TestReplayCaptureRejectsMissingConfig(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.Begin(obs.Header{Source: "simtest"})
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	c, err := obs.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayCapture(c); err == nil {
		t.Fatal("replay of a config-less capture succeeded")
	}
}
