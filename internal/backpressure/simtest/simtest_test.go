package simtest

import (
	"reflect"
	"testing"

	"repro/internal/backpressure"
)

// phaseWindows slices the trace for one phase.
func phaseWindows(res Result, phase string) []WindowResult {
	var out []WindowResult
	for _, w := range res.Windows {
		if w.Phase == phase {
			out = append(out, w)
		}
	}
	return out
}

// TestStandardReplay walks the canonical underload → overload →
// recovery script and asserts the controller's whole overload story.
func TestStandardReplay(t *testing.T) {
	cfg := StandardConfig()
	res, err := Run(cfg, StandardPhases())
	if err != nil {
		t.Fatal(err)
	}
	open := cfg.MaxPrio

	// Underload: the gate must not move — every window fully open, no
	// task gated.
	for i, w := range phaseWindows(res, "underload") {
		if w.Window.State.Threshold != open {
			t.Fatalf("underload window %d tightened the gate to %d", i, w.Window.State.Threshold)
		}
		if w.Window.Sample.Deferred != 0 || w.Window.Sample.Shed != 0 {
			t.Fatalf("underload window %d gated traffic: %+v", i, w.Window.Sample)
		}
	}

	// Overload: the admission bar must rise — the threshold cutoff falls
	// far enough to exclude the lowest-priority group — and the spillway
	// must overflow into real shedding.
	over := phaseWindows(res, "overload")
	minThresh := open
	var shed, deferred int64
	for _, w := range over {
		if th := w.Window.State.Threshold; th < minThresh {
			minThresh = th
		}
		shed += w.Window.Sample.Shed
		deferred += w.Window.Sample.Deferred
	}
	if minThresh >= 900_000 {
		t.Fatalf("overload never excluded the lowest-priority group: min threshold %d", minThresh)
	}
	if minThresh < cfg.ProtectedBand {
		t.Fatalf("threshold tightened into the protected band: %d < %d", minThresh, cfg.ProtectedBand)
	}
	if deferred == 0 || shed == 0 {
		t.Fatalf("sustained 2x overload deferred %d / shed %d tasks, want both > 0", deferred, shed)
	}

	// Protection: the groups inside the protected band were admitted to
	// the last task — never shed, never even deferred.
	for _, prio := range []int64{1 << 10, 1 << 16} {
		if res.ShedByPrio[prio] != 0 || res.DeferredByPrio[prio] != 0 {
			t.Fatalf("protected priority %d was gated: shed=%d deferred=%d",
				prio, res.ShedByPrio[prio], res.DeferredByPrio[prio])
		}
		if res.AdmittedByPrio[prio] == 0 {
			t.Fatalf("protected priority %d never admitted", prio)
		}
	}
	// Sanity: the unprotected tail did get gated, so protection was a
	// decision rather than a coincidence.
	if res.ShedByPrio[900_000] == 0 {
		t.Fatal("lowest-priority group was never shed under 2x overload")
	}

	// Recovery: the spillway drains back into the structure, the backlog
	// clears, and the gate reopens fully.
	rec := phaseWindows(res, "recovery")
	last := rec[len(rec)-1]
	if last.Spill != 0 {
		t.Fatalf("spillway still holds %d tasks after recovery", last.Spill)
	}
	if last.Backlog != 0 {
		t.Fatalf("backlog still %d after recovery", last.Backlog)
	}
	if res.Readmitted == 0 {
		t.Fatal("recovery re-admitted nothing from the spillway")
	}
	if res.Final.Threshold != open {
		t.Fatalf("gate did not reopen after recovery: %d, want %d", res.Final.Threshold, open)
	}
}

// TestMonotoneTightening: while the overload signal persists and no
// window shows headroom, the threshold never relaxes — the per-window
// decision chain is monotone under a monotone signal.
func TestMonotoneTightening(t *testing.T) {
	cfg := StandardConfig()
	// Hard overload with no service at all: every window is overloaded,
	// so the trace must be non-increasing until it saturates at the
	// protected band.
	res, err := Run(cfg, []Phase{{
		Name:    "jam",
		Windows: 64,
		Load:    Load{Arrivals: []Group{{Prio: 1 << 18, Count: 500}}, ServiceRate: 0, RankErrP99: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	prev := cfg.MaxPrio
	for i, w := range res.Windows {
		if th := w.Window.State.Threshold; th > prev {
			t.Fatalf("window %d relaxed under sustained overload: %d -> %d", i, prev, th)
		} else {
			prev = th
		}
	}
	if res.Final.Threshold != cfg.ProtectedBand {
		t.Fatalf("sustained jam must saturate at the protected band: %d, want %d",
			res.Final.Threshold, cfg.ProtectedBand)
	}
}

// TestRankSignalTightens: a rank-error budget breach tightens the gate
// even when the backlog has headroom — the second overload signal the
// ISSUE wires from the shared RankSignal estimator.
func TestRankSignalTightens(t *testing.T) {
	cfg := StandardConfig()
	cfg.RankErrorBudget = 100
	res, err := Run(cfg, []Phase{{
		Name:    "rank-breach",
		Windows: 4,
		Load:    Load{Arrivals: []Group{{Prio: 1 << 18, Count: 100}}, ServiceRate: 1000, RankErrP99: 5000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Threshold >= cfg.MaxPrio {
		t.Fatalf("rank breach with depth headroom did not tighten: %d", res.Final.Threshold)
	}
}

// TestReplayDeterministic: two runs of the same script are
// bit-identical — the property the CI simtest suite and any future
// trace-diffing tooling rest on.
func TestReplayDeterministic(t *testing.T) {
	cfg := StandardConfig()
	a, err := Run(cfg, StandardPhases())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, StandardPhases())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two replays of the same script diverged")
	}
}

// TestScriptValidation rejects malformed phases.
func TestScriptValidation(t *testing.T) {
	cfg := StandardConfig()
	bad := [][]Phase{
		{{Name: "empty", Windows: 0}},
		{{Name: "neg-rate", Windows: 1, Load: Load{ServiceRate: -1}}},
		{{Name: "neg-count", Windows: 1, Load: Load{Arrivals: []Group{{Prio: 1, Count: -1}}}}},
		{{Name: "out-of-domain", Windows: 1, Load: Load{Arrivals: []Group{{Prio: cfg.MaxPrio + 1, Count: 1}}}}},
	}
	for i, phases := range bad {
		if _, err := Run(cfg, phases); err == nil {
			t.Errorf("case %d: malformed script accepted", i)
		}
	}
	if _, err := Run(backpressure.Config{}, StandardPhases()); err == nil {
		t.Error("invalid config accepted")
	}
}
