package simtest

import (
	"errors"

	"repro/internal/backpressure"
	"repro/internal/obs"
)

// ReplayWindows drives a real backpressure.Controller — Step, snapshot
// diffing, clamping and all, not just the pure Decide chain — over a
// captured trace: the cumulative counters the live scheduler's tick
// fed to Step are rebuilt by integrating the captured per-window
// deltas, so the controller sees exactly the windows the incident saw.
// The returned trace must be bit-identical to the capture whenever the
// recorded config/seed and the decision logic still agree; any
// divergence localizes to the first differing window (obs.
// DiffBackpressure).
func ReplayWindows(cfg backpressure.Config, seed backpressure.State, ws []backpressure.Window) ([]backpressure.Window, error) {
	ctrl, err := backpressure.NewControllerSeeded(cfg, seed)
	if err != nil {
		return nil, err
	}
	var cum backpressure.Cumulative
	out := make([]backpressure.Window, 0, len(ws))
	for _, w := range ws {
		cum.Admitted += w.Sample.Admitted
		cum.Deferred += w.Sample.Deferred
		cum.Shed += w.Sample.Shed
		cum.Readmitted += w.Sample.Readmitted
		cum.Executed += w.Sample.Executed
		cum.Pending = w.Sample.Pending
		cum.Spill = w.Sample.Spill
		cum.RankErrP99 = w.Sample.RankErrP99
		out = append(out, ctrl.Step(w.At, cum))
	}
	return out, nil
}

// RunRecorded is Run with the session recorded: the validated config,
// the fully-open seed the plant starts from, and every window's
// decision record are written to rec as a capture (header source
// "simtest"), and the capture is sealed with Finish. The result is a
// synthetic incident file that round-trips through ReplayCapture
// bit-identically — the fixture the replay tests and cmd/replay
// demos are built on.
func RunRecorded(cfg backpressure.Config, phases []Phase, rec *obs.Recorder) (Result, error) {
	res, err := Run(cfg, phases)
	if err != nil {
		return res, err
	}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	rec.Begin(obs.Header{Source: "simtest", Meta: map[string]string{"plant": "backpressure"}})
	rec.ConfigBackpressure(cfg, cfg.Open())
	for _, w := range res.Windows {
		rec.BackpressureWindow(w.Window)
	}
	return res, rec.Finish()
}

// FromCapture extracts this plant's replay inputs from a parsed
// capture: the recorded controller config, the seed state in force at
// the capture's first window, and the decision trace.
func FromCapture(c *obs.Capture) (backpressure.Config, backpressure.State, []backpressure.Window, error) {
	if c.BPConfig == nil {
		return backpressure.Config{}, backpressure.State{}, nil,
			errors.New("simtest: capture has no backpressure config record")
	}
	return *c.BPConfig, c.BPSeed, c.BP, nil
}

// ReplayCapture is FromCapture + ReplayWindows: the one-call
// capture-to-trace replay cmd/replay uses.
func ReplayCapture(c *obs.Capture) ([]backpressure.Window, error) {
	cfg, seed, ws, err := FromCapture(c)
	if err != nil {
		return nil, err
	}
	return ReplayWindows(cfg, seed, ws)
}
