// Package backpressure implements priority-aware admission control for
// the open-system serving mode: under overload it sheds or defers the
// lowest-priority submissions so the structure's backlog — and with it
// the sojourn time of the traffic that still matters — stays bounded.
//
// The relaxed structures of this repo trade strict priority order for
// throughput. That trade only pays off while the scheduler keeps up: in
// an overloaded open system the queue grows without bound, every task's
// sojourn time grows with it, and the relaxation error compounds on top
// (Postnikova et al. use rank error as exactly this quality signal).
// A production scheduler therefore needs an admission policy in front
// of the structure. This package provides it as the repo's third
// controller on the sample → decide → apply pattern (internal/ctl):
//
//   - the scheduler samples, per window, its cumulative admission
//     counters plus two instantaneous signals: the outstanding-task
//     count (Scheduler.Pending) and the windowed rank-error p99
//     estimate (Config.RankSignal, shared with internal/adapt);
//   - the pure Decide function maintains an admission threshold over
//     the numeric priority domain: tasks with priority at or below the
//     threshold (smaller = more urgent) are admitted, the rest are
//     deferred to a bounded spillway or shed outright;
//   - overload — the structure's backlog exceeding what the observed
//     service rate clears within the sojourn budget, or a rank-error
//     budget breach — tightens the threshold one geometric step per
//     window; clear headroom relaxes it one step, so the loop is
//     AIMD-shaped like the adapt controller's;
//   - the threshold never tightens into the protected band: priorities
//     below Config.ProtectedBand are admitted unconditionally, the
//     "never shed" guarantee serving systems give their control-plane
//     traffic.
//
// Deferral gives bursty workloads a second chance: a task above the
// threshold is parked in a bounded Spillway and re-submitted (oldest
// first) when a window shows spare capacity — ReadmitQuota computes how
// many. Only when the spillway is full is a task shed (the scheduler
// returns sched.ErrShed so closed-loop callers can back off and retry).
//
// The decision function is pure and the controller clock-free, so the
// simtest subpackage replays whole scripted overload scenarios on a
// virtual clock, bit-identically.
package backpressure

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ctl"
)

// Default controller parameters.
const (
	// DefaultSojournBudget is the target sojourn time: the controller
	// tightens admission when the backlog exceeds what the observed
	// service rate clears within this budget.
	DefaultSojournBudget = 50 * time.Millisecond
	// DefaultInterval is the sampling window the scheduler drives the
	// controller at (shared cadence with the adapt controller).
	DefaultInterval = 10 * time.Millisecond
	// DefaultSpillCap bounds the deferral spillway.
	DefaultSpillCap = 4096
	// DefaultReadmitChunk caps how many spilled tasks one under-loaded
	// window re-submits, so readmission cannot itself re-overload the
	// structure before the next sample observes the effect.
	DefaultReadmitChunk = 256
)

// Config parameterizes the admission controller over a numeric priority
// domain [0, MaxPrio], smaller values more urgent.
type Config struct {
	// MaxPrio is the inclusive upper bound of the priority domain.
	// Required (≥ 1): the threshold arithmetic is geometric over the
	// span above the protected band and needs a finite ceiling.
	MaxPrio int64
	// ProtectedBand protects the most urgent traffic unconditionally:
	// tasks with priority < ProtectedBand are always admitted, and the
	// threshold never tightens below it. 0 protects nothing.
	ProtectedBand int64
	// SojournBudget is the target sojourn time (0 selects
	// DefaultSojournBudget). The overload signal compares the backlog
	// against Executed·(SojournBudget/Interval), the number of tasks the
	// observed per-window service rate clears within the budget.
	SojournBudget time.Duration
	// RankErrorBudget optionally adds the windowed rank-error p99 as a
	// second overload signal: a sample whose RankErrP99 exceeds it
	// tightens admission even with backlog headroom. 0 disables it.
	RankErrorBudget float64
	// Interval is the sampling window (0 selects DefaultInterval).
	// The controller itself is clock-free — Interval only scales the
	// sojourn-budget arithmetic and is consumed by whoever drives Step.
	Interval time.Duration
	// SpillCap bounds the deferral spillway (0 selects DefaultSpillCap).
	// Validated here so the scheduler and the simulation harness size
	// their spillways from one place.
	SpillCap int
	// ReadmitChunk caps per-window readmission (0 selects
	// DefaultReadmitChunk).
	ReadmitChunk int
}

// withDefaults normalizes zero fields.
func (c Config) withDefaults() Config {
	if c.SojournBudget == 0 {
		c.SojournBudget = DefaultSojournBudget
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.SpillCap == 0 {
		c.SpillCap = DefaultSpillCap
	}
	if c.ReadmitChunk == 0 {
		c.ReadmitChunk = DefaultReadmitChunk
	}
	return c
}

// Validate normalizes defaults and reports configuration errors.
func (c *Config) Validate() error {
	*c = c.withDefaults()
	if c.MaxPrio < 1 {
		return fmt.Errorf("backpressure: MaxPrio = %d, need a positive priority domain", c.MaxPrio)
	}
	if c.ProtectedBand < 0 || c.ProtectedBand > c.MaxPrio {
		return fmt.Errorf("backpressure: ProtectedBand = %d outside the priority domain [0, %d]", c.ProtectedBand, c.MaxPrio)
	}
	if c.SojournBudget < time.Millisecond {
		return fmt.Errorf("backpressure: SojournBudget = %v, must be at least 1ms", c.SojournBudget)
	}
	if c.RankErrorBudget < 0 {
		return fmt.Errorf("backpressure: RankErrorBudget = %v, must be non-negative", c.RankErrorBudget)
	}
	if c.Interval < time.Millisecond {
		return fmt.Errorf("backpressure: Interval = %v, must be at least 1ms", c.Interval)
	}
	if c.SpillCap < 1 {
		return fmt.Errorf("backpressure: SpillCap = %d, must be positive", c.SpillCap)
	}
	if c.ReadmitChunk < 1 {
		return fmt.Errorf("backpressure: ReadmitChunk = %d, must be positive", c.ReadmitChunk)
	}
	return nil
}

// Clamp forces st's threshold into [ProtectedBand, MaxPrio].
func (c Config) Clamp(st State) State {
	if st.Threshold < c.ProtectedBand {
		st.Threshold = c.ProtectedBand
	}
	if st.Threshold > c.MaxPrio {
		st.Threshold = c.MaxPrio
	}
	return st
}

// Open returns the fully open state: every priority admitted.
func (c Config) Open() State { return State{Threshold: c.MaxPrio} }

// State is the admission threshold in force: tasks with priority at or
// below Threshold are admitted, the rest deferred or shed. Threshold ==
// MaxPrio is fully open; a numerically LOWER threshold is a STRICTER
// admission bar (priorities are smaller-is-more-urgent), so "the
// threshold rises under overload" in the serving sense means the cutoff
// value falls toward the protected band.
type State struct {
	// Threshold is the inclusive admission cutoff: tasks with priority
	// at or below it are admitted, the rest deferred or shed.
	Threshold int64 `json:"threshold"`
}

// Admits reports whether a task of the given priority passes the
// threshold. This is the whole hot-path check: the scheduler keeps the
// current threshold in an atomic and calls this on every Submit.
func (st State) Admits(prio int64) bool { return prio <= st.Threshold }

// Sample is one window's observed signals: admission counter deltas
// over the window plus the instantaneous backlog, spillway occupancy
// and rank-error estimate.
type Sample struct {
	// Admitted is the number of tasks accepted past the gate.
	Admitted int64 `json:"admitted"`
	// Deferred is the number of tasks parked in the spillway.
	Deferred int64 `json:"deferred"`
	// Shed is the number of tasks rejected outright.
	Shed int64 `json:"shed"`
	// Readmitted is the number of spilled tasks re-submitted.
	Readmitted int64 `json:"readmitted"`
	// Executed is the number of tasks the workers completed.
	Executed int64 `json:"executed"`
	// Pending is the total outstanding-task count at the window's end,
	// including tasks parked in the spillway.
	Pending int64 `json:"pending"`
	// Spill is the spillway occupancy at the window's end.
	Spill int64 `json:"spill"`
	// RankErrP99 is the windowed rank-error p99 estimate (< 0 when no
	// signal is wired; the rank budget check is then skipped).
	RankErrP99 float64 `json:"rank_err_p99"`
}

// depth is the structure's own backlog: outstanding tasks minus the
// ones parked in the spillway (those are waiting at the gate, not in
// line for a worker).
func (s Sample) depth() int64 {
	d := s.Pending - s.Spill
	if d < 0 {
		return 0
	}
	return d
}

// DepthBudget converts the sojourn budget into a backlog bound: the
// number of tasks the window's observed service rate clears within
// Config.SojournBudget. A window that executed nothing has a zero
// budget — any backlog is then overload.
func (c Config) DepthBudget(executed int64) int64 {
	if executed <= 0 {
		return 0
	}
	return int64(float64(executed) * float64(c.SojournBudget) / float64(c.Interval))
}

// overloaded reports whether the window demands tightening: the backlog
// exceeds the depth budget, or the rank-error estimate breached its
// budget while tasks flowed.
func (s Sample) overloaded(c Config) bool {
	if d := s.depth(); d > 0 && d > c.DepthBudget(s.Executed) {
		return true
	}
	return c.RankErrorBudget > 0 && s.RankErrP99 >= 0 && s.RankErrP99 > c.RankErrorBudget
}

// underloaded reports clear headroom: the backlog is at most half the
// depth budget. The half forms the AIMD hysteresis gap — between half
// and full budget the threshold holds, so it cannot oscillate every
// window around the boundary. An idle window (no backlog, no service)
// counts as underloaded: with nothing queued the gate has no reason to
// stay tight.
func (s Sample) underloaded(c Config) bool {
	return s.depth()*2 <= c.DepthBudget(s.Executed)
}

// StepDown is one tightening step: it halves the open span above the
// protected band, saturating at the band itself. Exported so the
// one-step-per-window property is testable against the same arithmetic
// Decide uses.
func StepDown(threshold, protected int64) int64 {
	span := threshold - protected
	if span <= 0 {
		return protected
	}
	return protected + span/2
}

// StepUp is one relaxing step: it widens the open span above the
// protected band by a 1/16 increment of the domain (at least one
// priority), saturating at max. Relaxation is additive while StepDown
// is multiplicative — classic AIMD asymmetry — because the two
// directions carry different risk: reopening too fast floods the
// structure and the backlog spike lands on every admitted task's
// sojourn (the protected band included), while reopening too slowly
// merely sheds a little longer. A doubling StepUp was measured to make
// the threshold swing 2× around its equilibrium every few windows,
// with admission bursts that pushed the protected band's p99 an order
// of magnitude past the sojourn budget.
func StepUp(threshold, protected, max int64) int64 {
	inc := (max - protected) / 16
	if inc < 1 {
		inc = 1
	}
	t := threshold + inc
	if t > max || t < protected { // t < protected: overflow
		return max
	}
	return t
}

// Decide is the pure per-window decision function. Guarantees, each
// window, for any inputs (the property tests pin all three):
//
//   - the returned threshold never leaves [ProtectedBand, MaxPrio] — in
//     particular it never tightens into the protected band, so
//     protected traffic is structurally unsheddable;
//   - the threshold moves by at most one step (StepUp/StepDown);
//   - the decision is monotone in the overload signal: with everything
//     else fixed, a sample with a larger backlog never yields a more
//     permissive threshold.
//
// The policy: an overloaded window (backlog past the depth budget, or
// rank-error budget breached) tightens one multiplicative step; a
// window with clear headroom (backlog at most half the budget) relaxes
// one additive step; anything in between holds — the hysteresis gap
// that keeps the gate from oscillating around the budget boundary.
func Decide(cfg Config, cur State, s Sample) State {
	cfg = cfg.withDefaults()
	cur = cfg.Clamp(cur)
	switch {
	case s.overloaded(cfg):
		cur.Threshold = StepDown(cur.Threshold, cfg.ProtectedBand)
	case s.underloaded(cfg):
		cur.Threshold = StepUp(cur.Threshold, cfg.ProtectedBand, cfg.MaxPrio)
	}
	return cur
}

// ReadmitQuota computes how many spilled tasks a window's sample allows
// back in: nothing while overloaded; up to the spare depth budget (and
// ReadmitChunk) otherwise. An empty structure always re-feeds — when
// the backlog is zero the spillway IS the backlog, and holding its
// tasks would strand them until more traffic arrives.
func ReadmitQuota(cfg Config, s Sample) int64 {
	cfg = cfg.withDefaults()
	if s.Spill == 0 || s.overloaded(cfg) {
		return 0
	}
	chunk := int64(cfg.ReadmitChunk)
	quota := chunk
	if d := s.depth(); d > 0 {
		room := cfg.DepthBudget(s.Executed) - d
		if room <= 0 {
			return 0
		}
		if room < quota {
			quota = room
		}
	}
	if s.Spill < quota {
		quota = s.Spill
	}
	return quota
}

// Cumulative is a snapshot of monotone admission counters plus the
// instantaneous signals, as fed to Controller.Step. The controller
// differences successive snapshots into window Samples itself.
type Cumulative struct {
	// Admitted through Executed are the monotone admission-outcome
	// counters: tasks admitted past the gate, parked in the spillway,
	// rejected outright, re-submitted from the spillway, and run.
	Admitted   int64
	Deferred   int64
	Shed       int64
	Readmitted int64
	Executed   int64
	// Pending and Spill are instantaneous occupancies, not cumulative
	// counters.
	Pending int64
	Spill   int64
	// RankErrP99 is the instantaneous windowed estimate (< 0 when no
	// signal is wired).
	RankErrP99 float64
}

// Window records one controller decision for tracing.
type Window = ctl.Window[Sample, State]

// diffCumulative turns successive snapshots into one window's Sample.
func diffCumulative(prev, cur Cumulative) Sample {
	return Sample{
		Admitted:   cur.Admitted - prev.Admitted,
		Deferred:   cur.Deferred - prev.Deferred,
		Shed:       cur.Shed - prev.Shed,
		Readmitted: cur.Readmitted - prev.Readmitted,
		Executed:   cur.Executed - prev.Executed,
		Pending:    cur.Pending,
		Spill:      cur.Spill,
		RankErrP99: cur.RankErrP99,
	}
}

// Controller is the stateful wrapper around Decide: a ctl.Loop that
// turns successive Cumulative snapshots into threshold decisions,
// starting fully open. Not safe for concurrent use — one goroutine
// (the scheduler's controller loop, or the simtest harness) drives it.
type Controller struct {
	cfg  Config
	loop *ctl.Loop[Cumulative, Sample, State]
}

// NewController validates cfg and returns a controller starting fully
// open (threshold at MaxPrio): admission only tightens on evidence.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.loop = ctl.NewLoop(diffCumulative, func(cur State, s Sample) State {
		return Decide(c.cfg, cur, s)
	}, cfg.Open())
	return c, nil
}

// NewControllerSeeded is NewController starting from an explicit
// (clamped) state instead of fully open. The live scheduler always
// starts open; this constructor exists for replaying captures that
// begin mid-session, where the recorded seed is the threshold that was
// in force at the capture's first window.
func NewControllerSeeded(cfg Config, seed State) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.loop = ctl.NewLoop(diffCumulative, func(cur State, s Sample) State {
		return Decide(c.cfg, cur, s)
	}, cfg.Clamp(seed))
	return c, nil
}

// Config returns the validated configuration.
func (c *Controller) Config() Config { return c.cfg }

// State returns the threshold currently in force.
func (c *Controller) State() State { return c.loop.State() }

// Prime sets the baseline snapshot subsequent Steps are differenced
// against, without taking a decision (see ctl.Loop.Prime).
func (c *Controller) Prime(cum Cumulative) { c.loop.Prime(cum) }

// Step closes one window: it differences cum against the previous
// snapshot, decides, and returns the decision record.
func (c *Controller) Step(at time.Duration, cum Cumulative) Window {
	return c.loop.Step(at, cum)
}

// Spillway is the bounded deferral buffer between the admission gate
// and the shed decision: tasks above the threshold wait here, FIFO, for
// a window with spare capacity. All methods are safe for concurrent
// use — producers Offer while the controller goroutine drains.
type Spillway[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
	n    int
}

// NewSpillway returns an empty spillway holding at most capacity tasks.
// Capacity must be ≥ 1.
func NewSpillway[T any](capacity int) *Spillway[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Spillway[T]{buf: make([]T, capacity)}
}

// Offer parks v, reporting false (task must be shed) when full.
func (s *Spillway[T]) Offer(v T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == len(s.buf) {
		return false
	}
	s.buf[(s.head+s.n)%len(s.buf)] = v
	s.n++
	return true
}

// DrainUpTo removes and returns up to max tasks, oldest first. Nil when
// empty or max < 1.
func (s *Spillway[T]) DrainUpTo(max int) []T {
	if max < 1 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	if max > s.n {
		max = s.n
	}
	out := make([]T, 0, max)
	var zero T
	for i := 0; i < max; i++ {
		out = append(out, s.buf[s.head])
		s.buf[s.head] = zero // drop the reference for the GC
		s.head = (s.head + 1) % len(s.buf)
	}
	s.n -= max
	return out
}

// DrainUpToInto is DrainUpTo with a caller-owned buffer: it fills out
// with up to len(out) tasks, oldest first, and returns the count — the
// allocation-free drain the scheduler's readmission path reuses one
// scratch buffer for.
func (s *Spillway[T]) DrainUpToInto(out []T) int {
	if len(out) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	max := len(out)
	if max > s.n {
		max = s.n
	}
	var zero T
	for i := 0; i < max; i++ {
		out[i] = s.buf[s.head]
		s.buf[s.head] = zero // drop the reference for the GC
		s.head = (s.head + 1) % len(s.buf)
	}
	s.n -= max
	return max
}

// Len returns the current occupancy.
func (s *Spillway[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Cap returns the capacity.
func (s *Spillway[T]) Cap() int { return len(s.buf) }
