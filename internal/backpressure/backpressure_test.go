package backpressure

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

// testCfg is the validated configuration the policy tests run against:
// a 2^20 priority domain with a protected band at 2^17 and a 100ms
// budget over 10ms windows (depth budget = 10× the window's executed).
func testCfg(t *testing.T) Config {
	t.Helper()
	c := Config{
		MaxPrio:       1<<20 - 1,
		ProtectedBand: 1 << 17,
		SojournBudget: 100 * time.Millisecond,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDecideTable pins the policy branch by branch.
func TestDecideTable(t *testing.T) {
	cfg := testCfg(t)
	open := cfg.MaxPrio
	pb := cfg.ProtectedBand
	cases := []struct {
		name string
		cur  State
		s    Sample
		want int64
	}{
		{
			name: "steady within budget holds",
			cur:  State{Threshold: open},
			// depth 800, budget 1000: past half, under full — hysteresis.
			s:    Sample{Executed: 100, Pending: 800, RankErrP99: -1},
			want: open,
		},
		{
			name: "backlog past the depth budget tightens",
			cur:  State{Threshold: open},
			s:    Sample{Executed: 100, Pending: 2000, RankErrP99: -1},
			want: StepDown(open, pb),
		},
		{
			name: "clear headroom relaxes",
			cur:  State{Threshold: pb + 1024},
			s:    Sample{Executed: 100, Pending: 300, RankErrP99: -1},
			want: StepUp(pb+1024, pb, open),
		},
		{
			name: "idle window relaxes toward open",
			cur:  State{Threshold: pb + 1024},
			s:    Sample{RankErrP99: -1},
			want: StepUp(pb+1024, pb, open),
		},
		{
			name: "no service with backlog is overload",
			cur:  State{Threshold: open},
			s:    Sample{Executed: 0, Pending: 50, RankErrP99: -1},
			want: StepDown(open, pb),
		},
		{
			name: "spilled tasks do not count as structure backlog",
			cur:  State{Threshold: pb + 1024},
			// pending 2300 but 2000 of it parked: depth 300 vs budget 1000.
			s:    Sample{Executed: 100, Pending: 2300, Spill: 2000, RankErrP99: -1},
			want: StepUp(pb+1024, pb, open),
		},
		{
			name: "tighten saturates at the protected band",
			cur:  State{Threshold: pb},
			s:    Sample{Executed: 0, Pending: 1 << 30, RankErrP99: -1},
			want: pb,
		},
		{
			name: "relax saturates at MaxPrio",
			cur:  State{Threshold: open - 1},
			s:    Sample{RankErrP99: -1},
			want: open,
		},
		{
			name: "out-of-domain input state is clamped",
			cur:  State{Threshold: 10 * open},
			s:    Sample{Executed: 100, Pending: 800, RankErrP99: -1},
			want: open,
		},
	}
	for _, tc := range cases {
		if got := Decide(cfg, tc.cur, tc.s); got.Threshold != tc.want {
			t.Errorf("%s: Decide = %d, want %d", tc.name, got.Threshold, tc.want)
		}
	}
}

// TestDecideRankBudget: the rank-error signal is a second, independent
// overload trigger, and an absent signal (< 0) or disabled budget (0)
// never fires it.
func TestDecideRankBudget(t *testing.T) {
	cfg := testCfg(t)
	cfg.RankErrorBudget = 500
	open := State{Threshold: cfg.MaxPrio}
	// Headroom in depth, but rank error over budget: tighten wins.
	got := Decide(cfg, open, Sample{Executed: 100, Pending: 100, RankErrP99: 501})
	if want := StepDown(cfg.MaxPrio, cfg.ProtectedBand); got.Threshold != want {
		t.Fatalf("rank breach with depth headroom: threshold %d, want %d", got.Threshold, want)
	}
	// Missing signal must not breach.
	got = Decide(cfg, open, Sample{Executed: 100, Pending: 100, RankErrP99: -1})
	if got.Threshold != cfg.MaxPrio {
		t.Fatalf("missing rank signal tightened: %d", got.Threshold)
	}
	// Disabled budget ignores even huge estimates.
	cfg.RankErrorBudget = 0
	got = Decide(cfg, open, Sample{Executed: 100, Pending: 100, RankErrP99: 1e12})
	if got.Threshold != cfg.MaxPrio {
		t.Fatalf("disabled rank budget tightened: %d", got.Threshold)
	}
}

// oneStep reports whether next is reachable from cur by at most one
// Decide move.
func oneStep(cfg Config, cur State, next int64) bool {
	cur = cfg.Clamp(cur)
	return next == cur.Threshold ||
		next == StepUp(cur.Threshold, cfg.ProtectedBand, cfg.MaxPrio) ||
		next == StepDown(cur.Threshold, cfg.ProtectedBand)
}

// TestDecideProperties drives random samples through Decide via
// testing/quick and checks the three contract properties: the threshold
// never leaves [ProtectedBand, MaxPrio] (protected traffic is
// structurally unsheddable), never moves more than one step per window,
// and is monotone in the overload signal — a strictly deeper backlog
// never yields a more permissive threshold.
func TestDecideProperties(t *testing.T) {
	cfg := testCfg(t)
	cfg.RankErrorBudget = 300
	prop := func(seed uint64, n uint8) bool {
		r := xrand.New(seed)
		cur := State{Threshold: int64(r.Uint64n(uint64(2 * cfg.MaxPrio)))} // may start out of domain
		for i := 0; i < int(n)+1; i++ {
			s := Sample{
				Admitted:   int64(r.Intn(100000)),
				Deferred:   int64(r.Intn(10000)),
				Shed:       int64(r.Intn(10000)),
				Readmitted: int64(r.Intn(1000)),
				Executed:   int64(r.Intn(20000)),
				Pending:    int64(r.Intn(1 << 21)),
				Spill:      int64(r.Intn(8192)),
				RankErrP99: float64(r.Intn(1000)) - 1,
			}
			next := Decide(cfg, cur, s)
			if next.Threshold < cfg.ProtectedBand || next.Threshold > cfg.MaxPrio {
				t.Logf("threshold left the domain: %+v -> %+v on %+v", cur, next, s)
				return false
			}
			if !oneStep(cfg, cur, next.Threshold) {
				t.Logf("multi-step move: %+v -> %+v on %+v", cur, next, s)
				return false
			}
			deeper := s
			deeper.Pending += 1 + int64(r.Intn(1<<20))
			if d := Decide(cfg, cur, deeper); d.Threshold > next.Threshold {
				t.Logf("monotonicity violated: pending %d -> threshold %d, pending %d -> threshold %d",
					s.Pending, next.Threshold, deeper.Pending, d.Threshold)
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDecideDeterministic: the same (config, state, sample) always
// produces the same decision — the foundation the simtest replay
// determinism rests on.
func TestDecideDeterministic(t *testing.T) {
	cfg := testCfg(t)
	prop := func(th uint32, exec, pend uint16, rank float64) bool {
		cur := State{Threshold: int64(th)}
		s := Sample{Executed: int64(exec), Pending: int64(pend), RankErrP99: rank}
		return Decide(cfg, cur, s) == Decide(cfg, cur, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepArithmetic(t *testing.T) {
	if got := StepDown(1000, 100); got != 550 {
		t.Fatalf("StepDown(1000, 100) = %d", got)
	}
	if got := StepDown(100, 100); got != 100 {
		t.Fatalf("StepDown at the band = %d, want saturation", got)
	}
	// Additive increase: 1/16 of the 900-wide domain above the band.
	if got := StepUp(100, 100, 1000); got != 156 {
		t.Fatalf("StepUp from the band = %d, want +domain/16 = 156", got)
	}
	if got := StepUp(990, 100, 1000); got != 1000 {
		t.Fatalf("StepUp(990, 100, 1000) = %d, want saturation at max", got)
	}
	// A domain narrower than 16 priorities still opens one per step.
	if got := StepUp(100, 100, 105); got != 101 {
		t.Fatalf("StepUp on a tiny domain = %d, want one open priority", got)
	}
	if got := StepUp(1<<62, 0, 1<<62+5); got != 1<<62+5 {
		t.Fatalf("StepUp overflow guard = %d", got)
	}
}

func TestReadmitQuota(t *testing.T) {
	cfg := testCfg(t) // budget multiplier 10×
	cases := []struct {
		name string
		s    Sample
		want int64
	}{
		{"empty spillway", Sample{Executed: 100, Pending: 0}, 0},
		{"overloaded window readmits nothing", Sample{Executed: 100, Pending: 2000, Spill: 500}, 0},
		{"empty structure re-feeds a chunk", Sample{Executed: 0, Pending: 500, Spill: 500}, int64(DefaultReadmitChunk)},
		{"empty structure with a small spill drains it", Sample{Executed: 0, Pending: 3, Spill: 3}, 3},
		{"headroom admits up to the spare budget", Sample{Executed: 10, Pending: 580, Spill: 500}, 20},
		{"chunk caps a large spare budget", Sample{Executed: 1000, Pending: 1100, Spill: 9000}, int64(DefaultReadmitChunk)},
		{"no room at exactly the budget", Sample{Executed: 10, Pending: 600, Spill: 500}, 0},
	}
	for _, tc := range cases {
		if got := ReadmitQuota(cfg, tc.s); got != tc.want {
			t.Errorf("%s: quota = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},                                 // MaxPrio missing
		{MaxPrio: -5},                      // negative domain
		{MaxPrio: 100, ProtectedBand: 101}, // band outside the domain
		{MaxPrio: 100, ProtectedBand: -1},  // negative band
		{MaxPrio: 100, SojournBudget: time.Microsecond}, // sub-ms budget
		{MaxPrio: 100, Interval: time.Microsecond},      // sub-ms window
		{MaxPrio: 100, SpillCap: -1},
		{MaxPrio: 100, ReadmitChunk: -1},
		{MaxPrio: 100, RankErrorBudget: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	c := Config{MaxPrio: 1 << 20}
	if err := c.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if c.SojournBudget != DefaultSojournBudget || c.Interval != DefaultInterval ||
		c.SpillCap != DefaultSpillCap || c.ReadmitChunk != DefaultReadmitChunk {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("NewController accepted an invalid config")
	}
}

// TestControllerStepDeltas: the controller differences cumulative
// snapshots into window samples, starts fully open, and only tightens
// on evidence.
func TestControllerStepDeltas(t *testing.T) {
	cfg := testCfg(t)
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.State(); got.Threshold != cfg.MaxPrio {
		t.Fatalf("seed threshold = %d, want fully open %d", got.Threshold, cfg.MaxPrio)
	}
	// Window 1: 100 executed, backlog 2000 — overload, tighten.
	w1 := ctrl.Step(10*time.Millisecond, Cumulative{Admitted: 2100, Executed: 100, Pending: 2000, RankErrP99: -1})
	if w1.Sample.Admitted != 2100 || w1.Sample.Executed != 100 {
		t.Fatalf("first window sample %+v, want raw cumulative values", w1.Sample)
	}
	if want := StepDown(cfg.MaxPrio, cfg.ProtectedBand); w1.State.Threshold != want {
		t.Fatalf("overloaded first window: threshold %d, want %d", w1.State.Threshold, want)
	}
	// Window 2: backlog cleared — relax one step.
	w2 := ctrl.Step(20*time.Millisecond, Cumulative{Admitted: 2100, Executed: 2100, Pending: 0, RankErrP99: -1})
	if w2.Sample.Admitted != 0 || w2.Sample.Executed != 2000 {
		t.Fatalf("second window sample %+v, want deltas 0/2000", w2.Sample)
	}
	if w2.State.Threshold <= w1.State.Threshold {
		t.Fatalf("recovered window did not relax: %d -> %d", w1.State.Threshold, w2.State.Threshold)
	}
	if got := ctrl.State(); got != w2.State {
		t.Fatalf("State() = %+v, trace says %+v", got, w2.State)
	}
}

func TestControllerPrime(t *testing.T) {
	ctrl, err := NewController(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Prime(Cumulative{Admitted: 1e9, Executed: 1e9})
	w := ctrl.Step(10*time.Millisecond, Cumulative{Admitted: 1e9 + 50, Executed: 1e9 + 50, Pending: 0, RankErrP99: -1})
	if w.Sample.Admitted != 50 || w.Sample.Executed != 50 {
		t.Fatalf("primed first window sampled history: %+v", w.Sample)
	}
}

func TestSpillwayFIFOAndBounds(t *testing.T) {
	s := NewSpillway[int](3)
	if s.Cap() != 3 || s.Len() != 0 {
		t.Fatalf("fresh spillway cap=%d len=%d", s.Cap(), s.Len())
	}
	for i := 1; i <= 3; i++ {
		if !s.Offer(i) {
			t.Fatalf("Offer(%d) refused below capacity", i)
		}
	}
	if s.Offer(4) {
		t.Fatal("Offer accepted past capacity")
	}
	if got := s.DrainUpTo(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DrainUpTo(2) = %v, want [1 2]", got)
	}
	if !s.Offer(4) || !s.Offer(5) {
		t.Fatal("Offer refused after drain made room")
	}
	if got := s.DrainUpTo(100); len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("final drain = %v, want [3 4 5]", got)
	}
	if got := s.DrainUpTo(1); got != nil {
		t.Fatalf("drain of empty spillway = %v", got)
	}
	if got := s.DrainUpTo(0); got != nil {
		t.Fatalf("DrainUpTo(0) = %v", got)
	}
}

// TestSpillwayConcurrent: concurrent Offer/DrainUpTo must neither lose
// nor duplicate tasks (runs under CI's -race lane).
func TestSpillwayConcurrent(t *testing.T) {
	const producers, perProducer = 4, 5000
	s := NewSpillway[int](256)
	var wg sync.WaitGroup
	var parked, refused sync.Map
	var mu sync.Mutex
	drained := map[int]bool{}

	stop := make(chan struct{})
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		for {
			got := s.DrainUpTo(17)
			mu.Lock()
			for _, v := range got {
				if drained[v] {
					t.Errorf("value %d drained twice", v)
				}
				drained[v] = true
			}
			mu.Unlock()
			if len(got) == 0 {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				if s.Offer(v) {
					parked.Store(v, true)
				} else {
					refused.Store(v, true)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	dwg.Wait()
	for _, v := range s.DrainUpTo(1 << 20) {
		mu.Lock()
		if drained[v] {
			t.Errorf("value %d drained twice", v)
		}
		drained[v] = true
		mu.Unlock()
	}
	parked.Range(func(k, _ any) bool {
		if !drained[k.(int)] {
			t.Errorf("parked value %v lost", k)
			return false
		}
		return true
	})
	refused.Range(func(k, _ any) bool {
		if drained[k.(int)] {
			t.Errorf("refused value %v surfaced anyway", k)
			return false
		}
		return true
	})
}
