package fair

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

func cfg4(weights ...int64) Config {
	if len(weights) == 0 {
		weights = []int64{1, 1, 1, 1}
	}
	return Config{Weights: weights}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Weights: []int64{0, 0}},
		{Weights: []int64{1, -1}},
		{Weights: make([]int64, MaxTenants+1)},
		{Weights: []int64{1}, FloorFrac: 0.9},
		{Weights: []int64{1}, SojournBudget: time.Microsecond},
		{Weights: []int64{1}, Interval: time.Microsecond},
		{Weights: []int64{1, 1}, Budgets: []time.Duration{time.Second}},
		{Weights: []int64{1}, Budgets: []time.Duration{time.Microsecond}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	c := cfg4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.FloorFrac != DefaultFloorFrac || c.SojournBudget != DefaultSojournBudget || c.Interval != DefaultInterval {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Tenants() != 4 {
		t.Errorf("Tenants = %d, want 4", c.Tenants())
	}
}

func TestBudgetBands(t *testing.T) {
	c := Config{
		Weights: []int64{1, 1, 1},
		Budgets: []time.Duration{0, 20 * time.Millisecond, 100 * time.Millisecond},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Budget(0); got != DefaultSojournBudget {
		t.Errorf("Budget(0) = %v, want default %v", got, DefaultSojournBudget)
	}
	if got := c.Budget(1); got != 20*time.Millisecond {
		t.Errorf("Budget(1) = %v, want 20ms", got)
	}
	// A tighter band means a smaller depth budget for the same service
	// rate: tenant 1's SLA bites sooner than tenant 2's.
	if b1, b2 := c.DepthBudget(1, 100), c.DepthBudget(2, 100); b1 >= b2 {
		t.Errorf("DepthBudget: tight band %d ≥ loose band %d", b1, b2)
	}
}

// TestWaterfillConvergesToWeights: when every tenant demands more than
// its share, the fair allocation is the weight vector scaled to
// capacity — the quotas-converge-to-weights property the simtest plant
// measures end to end.
func TestWaterfillConvergesToWeights(t *testing.T) {
	c := cfg4(1, 2, 3, 4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	const capacity = 10000
	demand := []int64{1 << 30, 1 << 30, 1 << 30, 1 << 30}
	quotas, floors := Waterfill(c, capacity, demand)
	var total int64
	for t := range quotas {
		total += quotas[t]
	}
	for i, q := range quotas {
		share := capacity * c.Weights[i] / 10
		if q < share*9/10 || q > share*11/10 {
			t.Errorf("quota[%d] = %d, want ≈ weight share %d", i, q, share)
		}
		if floors[i] < 1 || q < floors[i] {
			t.Errorf("tenant %d: floor %d quota %d violate floor ≥ 1 ≤ quota", i, floors[i], q)
		}
	}
	if total > capacity*11/10 {
		t.Errorf("quota total %d overshoots capacity %d", total, capacity)
	}
}

// TestWaterfillSatisfiesColdTenants: a tenant demanding less than its
// share gets its whole demand; the leftover flows to the hot tenant.
func TestWaterfillSatisfiesColdTenants(t *testing.T) {
	c := cfg4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	quotas, _ := Waterfill(c, 1000, []int64{10000, 50, 50, 50})
	for i := 1; i < 4; i++ {
		if quotas[i] < 50 {
			t.Errorf("cold tenant %d quota %d under its demand 50", i, quotas[i])
		}
	}
	if quotas[0] < 700 {
		t.Errorf("hot tenant quota %d: leftover capacity not concentrated", quotas[0])
	}
}

// TestWaterfillZeroWeight: zero-weight tenants get no floor and no
// share, and positive-weight floors survive zero capacity.
func TestWaterfillZeroWeight(t *testing.T) {
	c := cfg4(0, 1, 1, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	quotas, floors := Waterfill(c, 0, []int64{100, 100, 100, 100})
	if quotas[0] != 0 || floors[0] != 0 {
		t.Errorf("zero-weight tenant allocated quota %d floor %d", quotas[0], floors[0])
	}
	for i := 1; i < 4; i++ {
		if floors[i] != 1 || quotas[i] != 1 {
			t.Errorf("tenant %d at zero capacity: floor %d quota %d, want the 1-task floor", i, floors[i], quotas[i])
		}
	}
}

// TestWaterfillProperties fuzzes the invariants Decide's doc promises:
// floors ≥ 1 for positive weights, quotas ≥ floors, total bounded by
// capacity plus the floor reserve.
func TestWaterfillProperties(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		c := Config{Weights: make([]int64, n)}
		var anyW int64
		for i := range c.Weights {
			c.Weights[i] = int64(r.Intn(5))
			anyW += c.Weights[i]
		}
		if anyW == 0 {
			c.Weights[r.Intn(n)] = 1
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		capacity := int64(r.Intn(10000))
		demand := make([]int64, n)
		for i := range demand {
			demand[i] = int64(r.Intn(5000))
		}
		quotas, floors := Waterfill(c, capacity, demand)
		var total, reserve int64
		for i := range quotas {
			if c.Weights[i] > 0 && floors[i] < 1 {
				t.Fatalf("trial %d: tenant %d floor %d < 1 with weight %d", trial, i, floors[i], c.Weights[i])
			}
			if c.Weights[i] == 0 && quotas[i] != 0 {
				t.Fatalf("trial %d: zero-weight tenant %d quota %d", trial, i, quotas[i])
			}
			if quotas[i] < floors[i] {
				t.Fatalf("trial %d: tenant %d quota %d < floor %d", trial, i, quotas[i], floors[i])
			}
			total += quotas[i]
			reserve += floors[i]
		}
		if total > capacity+reserve {
			t.Fatalf("trial %d: quota total %d > capacity %d + floor reserve %d", trial, total, capacity, reserve)
		}
	}
}

func sample4(arrived, executed, pending int64) Sample {
	mk := func(v int64) []int64 { return []int64{v, v, v, v} }
	return Sample{
		Arrived:  mk(arrived),
		Admitted: mk(arrived),
		Deferred: mk(0), Shed: mk(0), Readmitted: mk(0),
		Executed: mk(executed),
		Pending:  mk(pending),
	}
}

// TestDecideGateHysteresis: the gate engages on a tenant SLO breach,
// holds through the hysteresis gap, and releases at clear headroom.
func TestDecideGateHysteresis(t *testing.T) {
	c := cfg4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Open()
	if st.Gated {
		t.Fatal("open state gated")
	}
	// Executed 100/window per tenant with a 50ms budget over a 10ms
	// window clears 500; pending 2000 breaches.
	st = Decide(c, st, sample4(200, 100, 2000))
	if !st.Gated {
		t.Fatal("SLO breach did not engage the gate")
	}
	for i, q := range st.Quotas {
		if q < st.Floors[i] || st.Floors[i] < 1 {
			t.Fatalf("tenant %d gated with quota %d floor %d", i, q, st.Floors[i])
		}
	}
	// Pending at 60% of budget: inside the hysteresis gap, gate holds.
	st = Decide(c, st, sample4(100, 100, 300))
	if !st.Gated {
		t.Fatal("gate released inside the hysteresis gap")
	}
	// Clear headroom: release.
	st = Decide(c, st, sample4(50, 100, 100))
	if st.Gated {
		t.Fatal("gate held at clear headroom")
	}
}

// TestDecidePerTenantBand: a tenant with a tight SLA band engages the
// gate at a backlog the default band tolerates.
func TestDecidePerTenantBand(t *testing.T) {
	tight := Config{
		Weights: []int64{1, 1, 1, 1},
		Budgets: []time.Duration{10 * time.Millisecond, 0, 0, 0},
	}
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	loose := cfg4()
	if err := loose.Validate(); err != nil {
		t.Fatal(err)
	}
	// Backlog 300 per tenant at service 100/window: 10ms band clears
	// only 100 (breach), the default 50ms clears 500 (fine).
	s := sample4(100, 100, 300)
	if st := Decide(tight, tight.Open(), s); !st.Gated {
		t.Error("tight per-tenant band did not engage the gate")
	}
	if st := Decide(loose, loose.Open(), s); st.Gated {
		t.Error("default band engaged the gate without a breach")
	}
}

// TestDecideCapacityEWMA: the capacity estimate smooths service-rate
// jitter rather than tracking single windows.
func TestDecideCapacityEWMA(t *testing.T) {
	c := cfg4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Decide(c, c.Open(), sample4(100, 100, 0))
	if st.Capacity != 400 {
		t.Fatalf("first window capacity = %v, want 400 (total executed)", st.Capacity)
	}
	st = Decide(c, st, sample4(100, 50, 0))
	if st.Capacity != 300 {
		t.Fatalf("EWMA capacity = %v, want (400+200)/2 = 300", st.Capacity)
	}
}

// TestControllerStepDeterministic: same snapshots, same decisions —
// the bit-identical replay property the simtest plant relies on.
func TestControllerStepDeterministic(t *testing.T) {
	mk := func() *Controller {
		ctrl, err := NewController(cfg4(1, 2, 3, 4))
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	run := func(ctrl *Controller) []Window {
		var out []Window
		cum := Cumulative{
			Arrived: make([]int64, 4), Admitted: make([]int64, 4),
			Deferred: make([]int64, 4), Shed: make([]int64, 4),
			Readmitted: make([]int64, 4), Executed: make([]int64, 4),
			Pending: make([]int64, 4),
		}
		r := xrand.New(99)
		for w := 0; w < 50; w++ {
			for t := 0; t < 4; t++ {
				a := int64(r.Intn(500))
				cum.Arrived[t] += a
				cum.Admitted[t] += a
				cum.Executed[t] += int64(r.Intn(400))
				cum.Pending[t] = int64(r.Intn(3000))
			}
			out = append(out, ctrl.Step(time.Duration(w)*DefaultInterval, cum))
		}
		return out
	}
	a, b := run(mk()), run(mk())
	for i := range a {
		if a[i].State.Gated != b[i].State.Gated || a[i].State.Capacity != b[i].State.Capacity {
			t.Fatalf("window %d diverged: %+v vs %+v", i, a[i].State, b[i].State)
		}
		for t2 := range a[i].State.Quotas {
			if a[i].State.Quotas[t2] != b[i].State.Quotas[t2] {
				t.Fatalf("window %d tenant %d quota diverged", i, t2)
			}
		}
	}
}

// TestControllerScratchReuse: the controller clones snapshots, so a
// driver mutating its scratch slices between Steps cannot corrupt the
// differencing baseline.
func TestControllerScratchReuse(t *testing.T) {
	ctrl, err := NewController(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	cum := Cumulative{
		Arrived: []int64{10, 0, 0, 0}, Admitted: []int64{10, 0, 0, 0},
		Deferred: make([]int64, 4), Shed: make([]int64, 4),
		Readmitted: make([]int64, 4), Executed: []int64{10, 0, 0, 0},
		Pending: make([]int64, 4),
	}
	ctrl.Step(0, cum)
	cum.Arrived[0] = 30 // reuse the same backing arrays
	w := ctrl.Step(DefaultInterval, cum)
	if w.Sample.Arrived[0] != 20 {
		t.Fatalf("window sample arrived = %d, want 20 (30 cum − 10 baseline)", w.Sample.Arrived[0])
	}
}
