package simtest

import (
	"errors"

	"repro/internal/fair"
	"repro/internal/obs"
)

// ReplayWindows drives a real fair.Controller — Step, snapshot
// diffing, cloning and all, not just the pure Decide chain — over a
// captured trace: the cumulative per-tenant counters the live
// scheduler's tick fed to Step are rebuilt by integrating the captured
// per-window deltas, so the controller sees exactly the windows the
// incident saw. The returned trace must be bit-identical to the
// capture whenever the recorded config/seed and the decision logic
// still agree; any divergence localizes to the first differing window
// (obs.DiffFair).
func ReplayWindows(cfg fair.Config, seed fair.State, ws []fair.Window) ([]fair.Window, error) {
	ctrl, err := fair.NewControllerSeeded(cfg, seed)
	if err != nil {
		return nil, err
	}
	n := cfg.Tenants()
	cum := fair.Cumulative{
		Arrived: make([]int64, n), Admitted: make([]int64, n),
		Deferred: make([]int64, n), Shed: make([]int64, n),
		Readmitted: make([]int64, n), Executed: make([]int64, n),
		Pending: make([]int64, n),
	}
	add := func(dst, delta []int64) {
		for i := range dst {
			if i < len(delta) {
				dst[i] += delta[i]
			}
		}
	}
	out := make([]fair.Window, 0, len(ws))
	for _, w := range ws {
		add(cum.Arrived, w.Sample.Arrived)
		add(cum.Admitted, w.Sample.Admitted)
		add(cum.Deferred, w.Sample.Deferred)
		add(cum.Shed, w.Sample.Shed)
		add(cum.Readmitted, w.Sample.Readmitted)
		add(cum.Executed, w.Sample.Executed)
		copy(cum.Pending, w.Sample.Pending)
		out = append(out, ctrl.Step(w.At, cum))
	}
	return out, nil
}

// RunRecorded is Run with the session recorded: the validated config,
// the ungated seed the plant starts from, and every window's decision
// record are written to rec as a capture (header source "simtest"),
// and the capture is sealed with Finish. The result is a synthetic
// incident file that round-trips through ReplayCapture bit-identically.
func RunRecorded(cfg fair.Config, phases []Phase, rec *obs.Recorder) (Result, error) {
	res, err := Run(cfg, phases)
	if err != nil {
		return res, err
	}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	rec.Begin(obs.Header{Source: "simtest", Meta: map[string]string{"plant": "fair"}})
	rec.ConfigFair(cfg, cfg.Open())
	for _, w := range res.Windows {
		rec.FairWindow(w.Window)
	}
	return res, rec.Finish()
}

// FromCapture extracts this plant's replay inputs from a parsed
// capture: the recorded controller config, the seed state in force at
// the capture's first window, and the decision trace.
func FromCapture(c *obs.Capture) (fair.Config, fair.State, []fair.Window, error) {
	if c.FairConfig == nil {
		return fair.Config{}, fair.State{}, nil,
			errors.New("simtest: capture has no fair config record")
	}
	return *c.FairConfig, c.FairSeed, c.Fair, nil
}

// ReplayCapture is FromCapture + ReplayWindows: the one-call
// capture-to-trace replay.
func ReplayCapture(c *obs.Capture) ([]fair.Window, error) {
	cfg, seed, ws, err := FromCapture(c)
	if err != nil {
		return nil, err
	}
	return ReplayWindows(cfg, seed, ws)
}
