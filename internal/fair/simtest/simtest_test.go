package simtest

import (
	"reflect"
	"testing"

	"repro/internal/fair"
)

// phaseWindows extracts the trace windows belonging to one named phase.
func phaseWindows(res Result, name string) []WindowResult {
	var out []WindowResult
	for _, w := range res.Windows {
		if w.Phase == name {
			out = append(out, w)
		}
	}
	return out
}

// TestStandardReplay runs the canonical 10× hot-tenant script and
// asserts the fairness story phase by phase: the well-provisioned
// lead-in is untouched, the sustained 1.5× overload gates and converges
// each cold tenant's goodput to its weight-fair share without starving
// anyone, and the recovery tail releases the gate and drains the
// spillway.
func TestStandardReplay(t *testing.T) {
	cfg := StandardConfig()
	res, err := Run(cfg, StandardPhases())
	if err != nil {
		t.Fatal(err)
	}

	// Underload: the gate never engages and nothing is deferred or shed.
	for i, w := range phaseWindows(res, "underload") {
		if w.Window.State.Gated {
			t.Fatalf("underload window %d is gated: %+v", i, w.Window.State)
		}
		for ten := range w.Window.Sample.Deferred {
			if w.Window.Sample.Deferred[ten] != 0 || w.Window.Sample.Shed[ten] != 0 {
				t.Fatalf("underload window %d deferred/shed for tenant %d: %+v",
					i, ten, w.Window.Sample)
			}
		}
	}

	// Overload: the gate engages within the transient, and over the
	// converged tail each cold tenant's goodput lands within 25% of its
	// weight-fair share (1000/window split 7:1:1:1 → 100/window each)
	// while its demand is 115/window — the quota, not the demand, sets
	// the share.
	over := phaseWindows(res, "overload")
	gatedAt := -1
	for i, w := range over {
		if w.Window.State.Gated {
			gatedAt = i
			break
		}
	}
	if gatedAt < 0 {
		t.Fatal("overload never gated")
	}
	if gatedAt > 20 {
		t.Fatalf("overload gated only at window %d", gatedAt)
	}
	tail := over[len(over)-30:]
	const fairShare = 100.0 // 1000/window × weight 1/10
	for ten := 1; ten <= 3; ten++ {
		var sum int64
		for _, w := range tail {
			sum += w.Executed[ten]
		}
		avg := float64(sum) / float64(len(tail))
		if avg < 0.75*fairShare || avg > 1.25*fairShare {
			t.Errorf("cold tenant %d tail goodput %.1f/window, want within 25%% of %.0f",
				ten, avg, fairShare)
		}
	}

	// Zero starvation: in every converged overload window, every
	// positive-weight tenant executes work.
	for i, w := range tail {
		for ten, ex := range w.Executed {
			if ex == 0 {
				t.Errorf("tenant %d starved in overload tail window %d", ten, i)
			}
		}
	}

	// The converged quotas reflect the weight vector: the hot tenant's
	// quota dominates each cold quota by most of the 7:1 ratio, and the
	// cold quotas stay near the fair share.
	last := tail[len(tail)-1].Window.State
	if !last.Gated {
		t.Fatalf("overload tail not gated: %+v", last)
	}
	for ten := 1; ten <= 3; ten++ {
		if q := last.Quotas[ten]; q < 75 || q > 160 {
			t.Errorf("cold tenant %d converged quota %d, want near fair share 100", ten, q)
		}
		if last.Quotas[0] < 4*last.Quotas[ten] {
			t.Errorf("hot quota %d does not dominate cold quota %d under 7:1 weights",
				last.Quotas[0], last.Quotas[ten])
		}
		if last.Floors[ten] < 1 {
			t.Errorf("cold tenant %d floor %d, want ≥ 1", ten, last.Floors[ten])
		}
	}

	// The overload actually sheds once the spillway fills — the quota
	// rejections outrun the readmit chunk.
	var shed int64
	for _, v := range res.Shed {
		shed += v
	}
	if shed == 0 {
		t.Error("sustained 1.5× overload never shed")
	}

	// Recovery: the gate releases, the spillway drains, and the parked
	// work was readmitted rather than lost.
	recv := phaseWindows(res, "recovery")
	final := recv[len(recv)-1]
	if final.Window.State.Gated {
		t.Errorf("gate still engaged at the end of recovery: %+v", final.Window.State)
	}
	if final.Spill != 0 {
		t.Errorf("spillway still holds %d tasks at the end of recovery", final.Spill)
	}
	var readmitted int64
	for _, v := range res.Readmitted {
		readmitted += v
	}
	if readmitted == 0 {
		t.Error("no spilled task was ever readmitted")
	}

	// Conservation, per tenant: everything that arrived was admitted,
	// shed, or is still parked/pending; everything admitted or
	// readmitted beyond the final backlog was executed.
	for ten := range res.Arrived {
		inflow := res.Admitted[ten] + res.Readmitted[ten]
		outflow := res.Executed[ten] + final.Backlog[ten]
		if inflow != outflow {
			t.Errorf("tenant %d flow broken: admitted+readmitted %d, executed+backlog %d",
				ten, inflow, outflow)
		}
	}
}

// TestStarvationFloorHoldsUnderPriorityInflation scripts the
// adversarial scenario the floor exists for: the hot tenant inflates
// its priorities so the backpressure threshold (scripted at 1<<11)
// lands between its traffic (1<<10) and the cold tenants' (1<<12).
// Without the floor every cold task is over-threshold and starves;
// with it, once the gate engages each cold tenant's first Floors[t]
// tasks bypass the threshold and keep executing every window.
func TestStarvationFloorHoldsUnderPriorityInflation(t *testing.T) {
	cfg := StandardConfig()
	warm := Load{
		Arrivals: []Group{
			{Tenant: 0, Prio: 1 << 10, Count: 200},
			{Tenant: 1, Prio: 1 << 12, Count: 20},
			{Tenant: 2, Prio: 1 << 12, Count: 20},
			{Tenant: 3, Prio: 1 << 12, Count: 20},
		},
		ServiceRate: 1000,
		Threshold:   OpenThreshold,
	}
	inflate := Load{
		Arrivals: []Group{
			{Tenant: 0, Prio: 1 << 10, Count: 1200},
			{Tenant: 1, Prio: 1 << 12, Count: 100},
			{Tenant: 2, Prio: 1 << 12, Count: 100},
			{Tenant: 3, Prio: 1 << 12, Count: 100},
		},
		ServiceRate: 1000,
		Threshold:   1 << 11, // priority gate tightened into the hot band
	}
	res, err := Run(cfg, []Phase{
		{Name: "warmup", Windows: 10, Load: warm},
		{Name: "inflation", Windows: 40, Load: inflate},
	})
	if err != nil {
		t.Fatal(err)
	}

	infl := phaseWindows(res, "inflation")
	gatedAt := -1
	for i, w := range infl {
		if w.Window.State.Gated {
			gatedAt = i
			break
		}
	}
	if gatedAt < 0 {
		t.Fatal("priority inflation never engaged the gate")
	}
	if gatedAt > 5 {
		t.Fatalf("gate engaged only at inflation window %d; starved cold pending should gate it within a few windows", gatedAt)
	}

	// From the first window that ran under an engaged gate onward, every
	// cold tenant's floor lets work past the threshold (fresh arrivals
	// or spilled tasks being readmitted — both consume floor slots) and
	// the tenant executes work every single window — the no-starvation
	// guarantee under the worst-case adversary.
	for i, w := range infl[gatedAt+1:] {
		for ten := 1; ten <= 3; ten++ {
			if w.Window.Sample.Admitted[ten]+w.Window.Sample.Readmitted[ten] == 0 {
				t.Errorf("cold tenant %d admitted nothing in gated inflation window %d", ten, i)
			}
			if w.Executed[ten] == 0 {
				t.Errorf("cold tenant %d executed nothing in gated inflation window %d", ten, i)
			}
		}
	}

	// Sanity: the threshold really was adversarial — cold traffic was
	// deferred or shed in bulk, so the admissions above came from the
	// floor, not from headroom.
	var coldRejected int64
	for ten := 1; ten <= 3; ten++ {
		coldRejected += res.Deferred[ten] + res.Shed[ten]
	}
	if coldRejected == 0 {
		t.Error("no cold traffic was ever rejected; the inflation scenario has no teeth")
	}
}

// TestDiurnalRampReleases scripts a diurnal ramp — load climbing
// through the provisioned capacity to a 1.5× peak and back down — and
// asserts the gate engages around the peak and fully releases on the
// downslope, with the spillway drained.
func TestDiurnalRampReleases(t *testing.T) {
	cfg := StandardConfig()
	step := func(name string, windows int, x int64) Phase {
		return Phase{Name: name, Windows: windows, Load: Load{
			Arrivals: []Group{
				{Tenant: 0, Prio: 1 << 10, Count: 10 * x},
				{Tenant: 1, Prio: 1 << 12, Count: x},
				{Tenant: 2, Prio: 1 << 12, Count: x},
				{Tenant: 3, Prio: 1 << 12, Count: x},
			},
			ServiceRate: 1000,
			Threshold:   OpenThreshold,
		}}
	}
	res, err := Run(cfg, []Phase{
		step("night", 15, 20),   // 260/window
		step("morning", 15, 60), // 780/window
		step("peak", 40, 115),   // 1495/window ≈ 1.5×
		step("evening", 15, 60), // back under capacity
		step("late", 30, 20),    // idle tail
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, w := range phaseWindows(res, "night") {
		if w.Window.State.Gated {
			t.Fatalf("night window %d gated under 0.26× load", i)
		}
	}
	peakGated := false
	for _, w := range phaseWindows(res, "peak") {
		if w.Window.State.Gated {
			peakGated = true
			break
		}
	}
	if !peakGated {
		t.Error("1.5× peak never engaged the gate")
	}
	late := phaseWindows(res, "late")
	final := late[len(late)-1]
	if final.Window.State.Gated {
		t.Errorf("gate still engaged long after the peak: %+v", final.Window.State)
	}
	if final.Spill != 0 {
		t.Errorf("spillway still holds %d tasks long after the peak", final.Spill)
	}
}

// TestReplayDeterministic pins bit-identical replays: the plant is
// pure integer/float arithmetic on scripted inputs, so two runs of the
// same script are deeply equal, trace and all.
func TestReplayDeterministic(t *testing.T) {
	a, err := Run(StandardConfig(), StandardPhases())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(StandardConfig(), StandardPhases())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same script diverged")
	}
}

// TestScriptValidation pins the plant's input checking.
func TestScriptValidation(t *testing.T) {
	cfg := StandardConfig()
	cases := []struct {
		name   string
		cfg    fair.Config
		phases []Phase
	}{
		{"no windows", cfg, []Phase{{Name: "x", Windows: 0, Load: Load{ServiceRate: 1}}}},
		{"negative service", cfg, []Phase{{Name: "x", Windows: 1, Load: Load{ServiceRate: -1}}}},
		{"tenant out of range", cfg, []Phase{{Name: "x", Windows: 1, Load: Load{
			ServiceRate: 1, Arrivals: []Group{{Tenant: 4, Prio: 1, Count: 1}}}}}},
		{"negative count", cfg, []Phase{{Name: "x", Windows: 1, Load: Load{
			ServiceRate: 1, Arrivals: []Group{{Tenant: 0, Prio: 1, Count: -1}}}}}},
		{"negative priority", cfg, []Phase{{Name: "x", Windows: 1, Load: Load{
			ServiceRate: 1, Arrivals: []Group{{Tenant: 0, Prio: -1, Count: 1}}}}}},
		{"bad config", fair.Config{Weights: []int64{-1}}, []Phase{{Name: "x", Windows: 1, Load: Load{ServiceRate: 1}}}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg, tc.phases); err == nil {
			t.Errorf("%s: Run accepted an invalid script", tc.name)
		}
	}
}
