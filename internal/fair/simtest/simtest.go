// Package simtest is the deterministic, virtual-clock simulation
// harness for the tenant-fairness controller — the fair analogue of
// internal/backpressure/simtest, built on the same template: script
// load phases, model the plant's response to the quotas, assert the
// trace.
//
// The plant models the serve pipeline the scheduler wires the
// controller into: per window, scripted per-tenant arrival groups (a
// count of tasks for a tenant at a priority) face the two-stage gate —
// while gated, each tenant's first Floors[t] tasks are admitted
// unconditionally (the floor bypasses the priority threshold), tasks
// within the quota face the phase's priority threshold, and tasks over
// quota are parked in a real backpressure.Spillway until it is full
// and shed afterwards. A fixed service capacity drains the combined
// backlog — one task per non-empty tenant first (the floor traffic
// reaching the workers), the rest in proportion to backlog — and at
// the window's end the controller samples the cumulative per-tenant
// counters and decides; spilled tasks are re-offered under the next
// window's quotas, exactly as the scheduler's controller tick does.
//
// Everything is integer/float arithmetic on scripted inputs: no
// clocks, no randomness, so a replay is bit-identical run to run and
// the suite can assert the fairness story end to end — quotas converge
// to the weight vector under a 10× hot tenant, the starvation floor
// holds against adversarial priority inflation, and the gate releases
// when the diurnal peak passes.
package simtest

import (
	"fmt"
	"math"
	"time"

	"repro/internal/backpressure"
	"repro/internal/fair"
)

// Group is one scripted arrival class: Count tasks per window for
// tenant Tenant at priority Prio.
type Group struct {
	Tenant int
	Prio   int64
	Count  int64
}

// Load models the plant for one phase.
type Load struct {
	// Arrivals lists the per-window arrival groups.
	Arrivals []Group
	// ServiceRate is the number of tasks the workers execute per window.
	ServiceRate int64
	// Threshold is the priority admission cutoff in force during the
	// phase (tasks with Prio ≤ Threshold pass; use OpenThreshold for no
	// priority gating). It scripts the backpressure gate's output so the
	// floor-bypass interplay is testable without running that controller.
	Threshold int64
}

// OpenThreshold disables the phase's priority gate.
const OpenThreshold = math.MaxInt64

// Phase is one scripted segment of the replay.
type Phase struct {
	Name    string
	Windows int
	Load    Load
}

// WindowResult is one window of the trace: the phase it belongs to,
// the controller's decision record, the plant's per-tenant occupancies
// after the window, and the per-tenant executed counts of the window
// (what the starvation assertions read).
type WindowResult struct {
	Phase    string
	Window   fair.Window
	Backlog  []int64 // per-tenant structure depth after the window
	Spill    int64   // spillway occupancy after the window
	Executed []int64 // per-tenant tasks executed in the window
}

// Result is the full replay trace plus per-tenant admission totals.
type Result struct {
	Windows []WindowResult
	Final   fair.State
	// Per-tenant outcome totals over the whole replay.
	Arrived    []int64
	Admitted   []int64
	Deferred   []int64
	Shed       []int64
	Readmitted []int64
	Executed   []int64
}

// readmitChunk bounds per-window readmission in the plant, mirroring
// backpressure.DefaultReadmitChunk.
const readmitChunk = 256

// spillCap sizes the plant's spillway.
const spillCap = 2048

// spilled is one parked task: its tenant and priority.
type spilled struct {
	tenant int
	prio   int64
}

// Run replays the scripted phases against a fresh controller (starting
// ungated) and a fresh spillway. The virtual clock advances one
// cfg.Interval per window; the plant's counters accumulate across
// phases exactly like a real scheduler's do.
func Run(cfg fair.Config, phases []Phase) (Result, error) {
	ctrl, err := fair.NewController(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = ctrl.Config()
	n := cfg.Tenants()
	mk := func() []int64 { return make([]int64, n) }
	res := Result{
		Arrived: mk(), Admitted: mk(), Deferred: mk(),
		Shed: mk(), Readmitted: mk(), Executed: mk(),
	}
	spill := backpressure.NewSpillway[spilled](spillCap)
	cum := fair.Cumulative{
		Arrived: mk(), Admitted: mk(), Deferred: mk(),
		Shed: mk(), Readmitted: mk(), Executed: mk(),
		Pending: mk(),
	}
	backlog := mk()
	winAdm := mk() // per-window per-tenant admissions against the quota
	window := 0
	for _, ph := range phases {
		if ph.Windows < 1 {
			return Result{}, fmt.Errorf("simtest: phase %q has %d windows", ph.Name, ph.Windows)
		}
		if ph.Load.ServiceRate < 0 {
			return Result{}, fmt.Errorf("simtest: phase %q has a negative service rate", ph.Name)
		}
		for _, g := range ph.Load.Arrivals {
			if g.Count < 0 || g.Prio < 0 || g.Tenant < 0 || g.Tenant >= n {
				return Result{}, fmt.Errorf("simtest: phase %q group %+v outside the domain", ph.Name, g)
			}
		}
		for w := 0; w < ph.Windows; w++ {
			window++
			gate := ctrl.State()
			for t := range winAdm {
				winAdm[t] = 0
			}

			// admit runs one task through the two-stage gate exactly as
			// the scheduler's lock-free hot path does (the window counter
			// is an unconditional Add): tenant floor first (bypasses the
			// threshold), tenant quota next, priority threshold last,
			// spillway/shed on rejection.
			admit := func(t int, prio int64) (admitted, deferred bool) {
				if gate.Gated {
					winAdm[t]++
					seq := winAdm[t]
					if seq <= gate.Floors[t] {
						return true, false // floor: bypasses the threshold
					}
					if seq > gate.Quotas[t] {
						return false, spill.Offer(spilled{t, prio})
					}
				}
				if prio > ph.Load.Threshold {
					return false, spill.Offer(spilled{t, prio})
				}
				return true, false
			}

			// Readmission first: spilled tasks from earlier windows are
			// re-offered under the fresh quotas, oldest first, before new
			// arrivals consume them — mirroring the scheduler's tick
			// draining the spillway at the window boundary.
			for _, s := range spill.DrainUpTo(readmitChunk) {
				ok, re := admit(s.tenant, s.prio)
				switch {
				case ok:
					backlog[s.tenant]++
					cum.Readmitted[s.tenant]++
					res.Readmitted[s.tenant]++
				case re:
					// Over quota again: parked for a later window.
				default:
					cum.Shed[s.tenant]++
					res.Shed[s.tenant]++
				}
			}

			// Admission: every arrival faces the gates in force.
			for _, g := range ph.Load.Arrivals {
				for i := int64(0); i < g.Count; i++ {
					cum.Arrived[g.Tenant]++
					res.Arrived[g.Tenant]++
					ok, def := admit(g.Tenant, g.Prio)
					switch {
					case ok:
						backlog[g.Tenant]++
						cum.Admitted[g.Tenant]++
						res.Admitted[g.Tenant]++
					case def:
						cum.Deferred[g.Tenant]++
						res.Deferred[g.Tenant]++
					default:
						cum.Shed[g.Tenant]++
						res.Shed[g.Tenant]++
					}
				}
			}

			// Service: one task per non-empty tenant first (the floor
			// traffic reaching the workers), then the remaining capacity
			// in proportion to backlog, leftovers in tenant order — all
			// deterministic integer arithmetic.
			executed := mk()
			budget := ph.Load.ServiceRate
			var total int64
			for t := range backlog {
				if budget > 0 && backlog[t] > 0 {
					backlog[t]--
					executed[t]++
					budget--
				}
				total += backlog[t]
			}
			if total > 0 && budget > 0 {
				drain := budget
				if drain > total {
					drain = total
				}
				left := drain
				for t := range backlog {
					share := drain * backlog[t] / total
					backlog[t] -= share
					executed[t] += share
					left -= share
				}
				for t := 0; left > 0 && t < n; t++ {
					if backlog[t] > 0 {
						backlog[t]--
						executed[t]++
						left--
					}
				}
			}
			for t := range executed {
				cum.Executed[t] += executed[t]
				res.Executed[t] += executed[t]
				cum.Pending[t] = backlog[t]
			}
			// Spilled tasks count toward their tenant's outstanding work,
			// like the scheduler's Pending includes its spillway.
			spillByTenant := mk()
			for _, s := range spill.DrainUpTo(spill.Len()) {
				spillByTenant[s.tenant]++
				spill.Offer(s)
			}
			for t := range spillByTenant {
				cum.Pending[t] += spillByTenant[t]
			}

			rec := ctrl.Step(time.Duration(window)*cfg.Interval, cum)
			res.Windows = append(res.Windows, WindowResult{
				Phase:    ph.Name,
				Window:   rec,
				Backlog:  append([]int64(nil), backlog...),
				Spill:    int64(spill.Len()),
				Executed: executed,
			})
		}
	}
	res.Final = ctrl.State()
	return res, nil
}

// StandardConfig is the canonical harness configuration: four tenants,
// a 7:1:1:1 weight split (the hot tenant is also the heavy one, so the
// cold tenants' demand exceeds their fair share under the standard
// overload and the shares are measurable), a sojourn budget of five
// windows, and the default floor fraction.
func StandardConfig() fair.Config {
	return fair.Config{
		Weights:       []int64{7, 1, 1, 1},
		SojournBudget: 50 * time.Millisecond,
		Interval:      10 * time.Millisecond,
	}
}

// StandardPhases is the canonical hot-tenant script against a service
// rate of 1000/window: a well-provisioned lead-in the gate must leave
// alone, then a sustained 1.5× overload in which tenant 0 submits 10×
// each cold tenant's rate (10x+3x = 1495 arrivals per window at
// x=115), and a light recovery tail in which the spillway must drain
// and the gate release.
func StandardPhases() []Phase {
	mixed := func(x int64) []Group {
		return []Group{
			{Tenant: 0, Prio: 1 << 10, Count: 10 * x},
			{Tenant: 1, Prio: 1 << 12, Count: x},
			{Tenant: 2, Prio: 1 << 12, Count: x},
			{Tenant: 3, Prio: 1 << 12, Count: x},
		}
	}
	return []Phase{
		{Name: "underload", Windows: 20, Load: Load{Arrivals: mixed(20), ServiceRate: 1000, Threshold: OpenThreshold}},
		{Name: "overload", Windows: 60, Load: Load{Arrivals: mixed(115), ServiceRate: 1000, Threshold: OpenThreshold}},
		{Name: "recovery", Windows: 40, Load: Load{Arrivals: mixed(20), ServiceRate: 1000, Threshold: OpenThreshold}},
	}
}
