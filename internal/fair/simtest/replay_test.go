package simtest

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestReplayCaptureBitIdentical is the plant-level half of the
// tenant-fairness incident-replay contract: a recorded hot-tenant
// session, read back from its JSONL capture and re-run through a real
// controller via ReplayWindows, reproduces the captured fairness trace
// bit-identically — Step's own snapshot diffing and cloning included,
// not just the pure Decide chain.
func TestReplayCaptureBitIdentical(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	cfg := StandardConfig()
	res, err := RunRecorded(cfg, StandardPhases(), rec)
	if err != nil {
		t.Fatal(err)
	}

	// The incident must actually be an incident: the gate engaged.
	gated := false
	for _, w := range res.Windows {
		if w.Window.State.Gated {
			gated = true
			break
		}
	}
	if !gated {
		t.Fatal("hot-tenant script never engaged the gate")
	}

	c, err := obs.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.Source != "simtest" {
		t.Fatalf("capture source = %q, want simtest", c.Header.Source)
	}
	if c.End == nil {
		t.Fatal("capture was not sealed")
	}
	if len(c.Fair) != len(res.Windows) {
		t.Fatalf("capture has %d windows, plant produced %d", len(c.Fair), len(res.Windows))
	}

	replayed, err := ReplayCapture(c)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := obs.DiffFair(replayed, c.Fair); len(diffs) != 0 {
		t.Fatalf("plant replay diverges from capture (%d windows), first:\n%s", len(diffs), diffs[0])
	}

	// And against the live plant trace directly, not just the capture's
	// rendering of it: JSONL round-trip plus replay is end-to-end exact.
	for i, w := range res.Windows {
		if !reflect.DeepEqual(replayed[i], w.Window) {
			t.Fatalf("replayed[%d] = %+v, live plant window = %+v", i, replayed[i], w.Window)
		}
	}
}

// TestReplayCaptureRejectsMissingConfig pins the error path: a capture
// without a cfg_fair record cannot be replayed through this plant.
func TestReplayCaptureRejectsMissingConfig(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.Begin(obs.Header{Source: "simtest"})
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	c, err := obs.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayCapture(c); err == nil {
		t.Fatal("replay of a config-less capture succeeded")
	}
}
