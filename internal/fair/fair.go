// Package fair implements multi-tenant weighted-fair admission control
// for the open-system serving mode: a policy layer above the priority
// ordering that keeps one hot tenant from monopolizing the admission
// gate and the lanes, even when every one of its tasks is individually
// high-priority.
//
// The relaxed structures order by priority; INSPIRIT-style adaptive
// scheduling argues priority *assignment* is a separate policy layer,
// and "millions of users" means tenants, not priorities. Without this
// layer a tenant submitting 10× everyone else's traffic — or inflating
// its priorities — starves the rest behind the backpressure threshold,
// which is global. This package generalizes backpressure.ProtectedBand
// from a priority band to per-tenant quotas, as the repo's fourth
// controller on the sample → decide → apply pattern (internal/ctl):
//
//   - the scheduler samples, per window, its cumulative per-tenant
//     admission counters (arrived/admitted/deferred/shed/readmitted/
//     executed) plus the instantaneous per-tenant outstanding counts;
//   - the pure Decide function watches each tenant's sojourn budget —
//     the tenant's backlog against what its observed service rate
//     clears within its SLO band (Budgets, defaulting to the shared
//     SojournBudget) — and gates when any tenant breaches while the
//     system is saturated;
//   - while gated, each tenant's admission budget for the next window
//     is its weighted max-min fair share of the observed service
//     capacity (water-filling over smoothed demand): tenants under
//     their share are never gated, and the leftover flows to the hot
//     ones in weight proportion, so sustained uniform overload drives
//     the quotas to the weight vector;
//   - every tenant with positive weight also gets an unconditional
//     per-window floor (at least one task, FloorFrac of its capacity
//     share otherwise). Floor admissions bypass the priority threshold
//     entirely — the per-tenant generalization of the protected band —
//     so an adversary inflating its priorities cannot starve a
//     low-weight tenant's ordinary traffic.
//
// The decision function is pure and the controller clock-free, so the
// simtest subpackage replays scripted hot-tenant, diurnal and
// priority-inflation scenarios on a virtual clock, bit-identically.
package fair

import (
	"fmt"
	"time"

	"repro/internal/ctl"
)

// Default controller parameters.
const (
	// DefaultSojournBudget is the shared per-tenant SLO band used for
	// tenants without an explicit entry in Config.Budgets.
	DefaultSojournBudget = 50 * time.Millisecond
	// DefaultInterval is the sampling window the scheduler drives the
	// controller at (shared cadence with the other controllers).
	DefaultInterval = 10 * time.Millisecond
	// DefaultFloorFrac is the fraction of the observed capacity reserved
	// as unconditional per-tenant floors, split by weight.
	DefaultFloorFrac = 0.05
	// MaxTenants bounds the tenant-id domain: per-tenant hot-path
	// counters are padded to a cache-line stride, so an unbounded domain
	// would translate a config typo into an enormous allocation.
	MaxTenants = 1024
)

// demandSlack is the headroom multiplier on a tenant's observed
// arrivals when water-filling: a tenant under its fair share keeps a
// quota ~2× its current rate, so organic growth is not clipped at last
// window's demand while the leftover still flows to hotter tenants.
const demandSlack = 2

// Config parameterizes the fairness controller over a fixed tenant
// domain [0, len(Weights)).
type Config struct {
	// Weights are the per-tenant fair-share weights; the tenant count is
	// len(Weights). Required (1..MaxTenants entries, each ≥ 0, at least
	// one > 0). A zero-weight tenant gets no floor and no share — it is
	// admitted only through whatever the priority gate leaves open.
	Weights []int64
	// FloorFrac is the fraction of observed capacity reserved as
	// unconditional per-tenant floors, split by weight (0 selects
	// DefaultFloorFrac; every positive-weight tenant's floor is at least
	// one task per window regardless).
	FloorFrac float64
	// SojournBudget is the shared per-tenant SLO band (0 selects
	// DefaultSojournBudget): tenant t is overloaded when its backlog
	// exceeds what its observed service rate clears within its band.
	SojournBudget time.Duration
	// Budgets optionally overrides the SLO band per tenant (deadline/SLA
	// bands). Nil applies SojournBudget to every tenant; a zero entry
	// selects SojournBudget for that tenant. Length must match Weights
	// when non-nil.
	Budgets []time.Duration
	// Interval is the sampling window (0 selects DefaultInterval). The
	// controller itself is clock-free — Interval only scales the
	// sojourn-budget arithmetic and is consumed by whoever drives Step.
	Interval time.Duration
}

// withDefaults normalizes zero fields.
func (c Config) withDefaults() Config {
	if c.FloorFrac == 0 {
		c.FloorFrac = DefaultFloorFrac
	}
	if c.SojournBudget == 0 {
		c.SojournBudget = DefaultSojournBudget
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	return c
}

// Validate normalizes defaults and reports configuration errors.
func (c *Config) Validate() error {
	*c = c.withDefaults()
	if len(c.Weights) < 1 || len(c.Weights) > MaxTenants {
		return fmt.Errorf("fair: %d tenant weights, need 1..%d", len(c.Weights), MaxTenants)
	}
	var total int64
	for t, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("fair: Weights[%d] = %d, must be non-negative", t, w)
		}
		total += w
	}
	if total == 0 {
		return fmt.Errorf("fair: all %d tenant weights are zero, at least one must be positive", len(c.Weights))
	}
	if c.FloorFrac < 0 || c.FloorFrac > 0.5 {
		return fmt.Errorf("fair: FloorFrac = %v outside (0, 0.5]", c.FloorFrac)
	}
	if c.SojournBudget < time.Millisecond {
		return fmt.Errorf("fair: SojournBudget = %v, must be at least 1ms", c.SojournBudget)
	}
	if c.Budgets != nil && len(c.Budgets) != len(c.Weights) {
		return fmt.Errorf("fair: %d tenant budgets for %d weights", len(c.Budgets), len(c.Weights))
	}
	for t, b := range c.Budgets {
		if b != 0 && b < time.Millisecond {
			return fmt.Errorf("fair: Budgets[%d] = %v, must be 0 (default) or at least 1ms", t, b)
		}
	}
	if c.Interval < time.Millisecond {
		return fmt.Errorf("fair: Interval = %v, must be at least 1ms", c.Interval)
	}
	return nil
}

// Tenants returns the tenant count.
func (c Config) Tenants() int { return len(c.Weights) }

// Budget returns tenant t's SLO band.
func (c Config) Budget(t int) time.Duration {
	if t >= 0 && t < len(c.Budgets) && c.Budgets[t] != 0 {
		return c.Budgets[t]
	}
	return c.SojournBudget
}

// DepthBudget converts tenant t's SLO band into a backlog bound: the
// number of tasks the tenant's observed per-window service rate clears
// within its band. A tenant whose window executed nothing has a zero
// budget — any backlog is then overload for it.
func (c Config) DepthBudget(t int, executed int64) int64 {
	if executed <= 0 {
		return 0
	}
	return int64(float64(executed) * float64(c.Budget(t)) / float64(c.Interval))
}

// State is the tenant admission policy in force. Ungated (the fully
// open start), every tenant is unlimited. Gated, tenant t may admit at
// most Quotas[t] tasks per window, the first Floors[t] of which bypass
// the priority threshold.
type State struct {
	// Gated reports whether the quotas are enforced at all.
	Gated bool `json:"gated"`
	// Quotas is each tenant's per-window admission budget (water-filled
	// fair share; meaningful only while gated). Quotas[t] ≥ Floors[t].
	Quotas []int64 `json:"quotas,omitempty"`
	// Floors is each tenant's unconditional per-window admission floor:
	// at least 1 for every positive-weight tenant, so no tenant ever
	// starves. Floor admissions bypass the priority gate.
	Floors []int64 `json:"floors,omitempty"`
	// Capacity is the smoothed service-capacity estimate (tasks per
	// window) the quotas were filled from.
	Capacity float64 `json:"capacity"`
}

// Open returns the fully open (ungated) state.
func (c Config) Open() State { return State{} }

// Sample is one window's observed per-tenant signals: admission counter
// deltas over the window plus the instantaneous outstanding counts. All
// slices are indexed by tenant and sized Config.Tenants().
type Sample struct {
	// Arrived counts submissions offered (before any gate).
	Arrived []int64 `json:"arrived"`
	// Admitted counts tasks accepted past both gates.
	Admitted []int64 `json:"admitted"`
	// Deferred counts tasks parked in the spillway.
	Deferred []int64 `json:"deferred"`
	// Shed counts tasks rejected outright.
	Shed []int64 `json:"shed"`
	// Readmitted counts spilled tasks re-submitted.
	Readmitted []int64 `json:"readmitted"`
	// Executed counts tasks the workers completed.
	Executed []int64 `json:"executed"`
	// Pending is each tenant's outstanding-task count at the window's
	// end (admitted or spilled, not yet executed) — instantaneous, not a
	// delta.
	Pending []int64 `json:"pending"`
}

// totals sums a per-tenant slice.
func totals(xs []int64) int64 {
	var n int64
	for _, x := range xs {
		n += x
	}
	return n
}

// overloaded reports whether the window demands gating: some tenant's
// backlog exceeds its SLO depth budget while traffic flows. An idle
// system (nothing pending anywhere) is never overloaded.
func (s Sample) overloaded(c Config) bool {
	for t := range s.Pending {
		if s.Pending[t] > 0 && s.Pending[t] > c.DepthBudget(t, s.Executed[t]) {
			return true
		}
	}
	return false
}

// underloaded reports clear headroom: every tenant's backlog is at most
// half its depth budget — the AIMD-style hysteresis gap that keeps the
// gate from oscillating around the budget boundary.
func (s Sample) underloaded(c Config) bool {
	for t := range s.Pending {
		if s.Pending[t]*2 > c.DepthBudget(t, s.Executed[t]) {
			return false
		}
	}
	return true
}

// Waterfill computes the weighted max-min fair allocation of capacity
// over the per-tenant demands: every positive-weight tenant starts at
// its floor, and the remaining capacity is repeatedly split in weight
// proportion among tenants still below their demand, so tenants under
// their share are fully satisfied and the leftover concentrates on the
// hot ones. Exported so the simtest plant and the property tests pin
// the same arithmetic Decide uses. Returns the quotas and floors.
func Waterfill(cfg Config, capacity int64, demand []int64) (quotas, floors []int64) {
	n := len(cfg.Weights)
	quotas = make([]int64, n)
	floors = make([]int64, n)
	var totalW int64
	for _, w := range cfg.Weights {
		totalW += w
	}
	pool := capacity
	for t, w := range cfg.Weights {
		if w == 0 {
			continue
		}
		f := int64(cfg.FloorFrac * float64(capacity) * float64(w) / float64(totalW))
		if f < 1 {
			f = 1
		}
		floors[t] = f
		quotas[t] = f
		pool -= f
	}
	if pool < 0 {
		pool = 0
	}
	// Iterative water-filling: split the pool by weight among tenants
	// whose quota is still under their demand; tenants that saturate
	// return their surplus to the pool for the next round. n rounds
	// suffice — every round saturates at least one tenant or ends.
	for round := 0; round < n && pool > 0; round++ {
		var activeW int64
		for t, w := range cfg.Weights {
			if w > 0 && quotas[t] < demand[t] {
				activeW += w
			}
		}
		if activeW == 0 {
			break
		}
		next := pool
		progressed := false
		for t, w := range cfg.Weights {
			if w == 0 || quotas[t] >= demand[t] {
				continue
			}
			give := pool * w / activeW
			if give == 0 {
				give = 1 // integer-division dust: still make progress
			}
			if room := demand[t] - quotas[t]; give > room {
				give = room
			}
			if give > next {
				give = next
			}
			quotas[t] += give
			next -= give
			progressed = progressed || give > 0
		}
		pool = next
		if !progressed {
			break
		}
	}
	return quotas, floors
}

// Decide is the pure per-window decision function. Guarantees, for any
// inputs (the property tests pin them):
//
//   - every positive-weight tenant's floor is ≥ 1 and its quota ≥ its
//     floor, so no tenant with weight can ever be starved by the gate;
//   - the quota total never exceeds the capacity estimate plus the
//     floor reserve — gating cannot admit more than service clears;
//   - gating only engages on evidence (a tenant SLO breach) and only
//     releases with clear headroom — the hysteresis gap.
//
// The policy: the capacity estimate is an equal-weight EWMA of the
// window's total executed count (smoothing out scheduling jitter while
// staying deterministic). An overloaded window — some tenant's backlog
// past its SLO depth budget — engages the gate and water-fills the
// capacity over the tenants' smoothed demand (demandSlack× arrivals
// plus current backlog). A window with every tenant at clear headroom
// releases the gate; anything in between holds, re-filling quotas from
// fresh demand while gated.
func Decide(cfg Config, cur State, s Sample) State {
	cfg = cfg.withDefaults()
	next := State{Capacity: cur.Capacity}
	executed := totals(s.Executed)
	if next.Capacity == 0 {
		next.Capacity = float64(executed)
	} else {
		next.Capacity = (next.Capacity + float64(executed)) / 2
	}
	if inflow := totals(s.Admitted) + totals(s.Readmitted); cur.Gated &&
		executed >= inflow && float64(totals(s.Pending)) > next.Capacity {
		// Gate-starvation probe. The capacity estimate is measured from
		// executed work, but while gated the gate itself limits execution
		// — so a slow window ratchets the estimate down, which shrinks
		// the quotas, which shrinks the next window's executed count,
		// monotonically down to the floors, where the system wedges with
		// a full backlog and near-idle workers. This window shows the
		// wedge signature: service cleared everything the gate admitted
		// while real backlog waited, so the shortfall is self-inflicted,
		// not a slowdown. Grow the estimate multiplicatively instead,
		// bounded by the waiting backlog; a genuine slowdown re-enters
		// the EWMA path the moment inflow outruns service again.
		if probe := cur.Capacity * 1.25; probe > next.Capacity {
			if limit := float64(totals(s.Pending)); probe > limit {
				probe = limit
			}
			next.Capacity = probe
		}
	}
	switch {
	case s.overloaded(cfg):
		next.Gated = true
	case s.underloaded(cfg):
		next.Gated = false
	default:
		next.Gated = cur.Gated
	}
	if !next.Gated {
		return next
	}
	capacity := int64(next.Capacity)
	if c := executed; c > capacity {
		capacity = c // saturated windows: trust the fresher figure
	}
	demand := make([]int64, len(cfg.Weights))
	for t := range demand {
		demand[t] = demandSlack*s.Arrived[t] + s.Pending[t]
	}
	next.Quotas, next.Floors = Waterfill(cfg, capacity, demand)
	return next
}

// Cumulative is a snapshot of monotone per-tenant admission counters
// plus the instantaneous outstanding counts, as fed to Controller.Step.
// The controller differences successive snapshots into window Samples
// itself, and clones the slices on entry, so drivers may reuse their
// scratch between Steps.
type Cumulative struct {
	Arrived    []int64
	Admitted   []int64
	Deferred   []int64
	Shed       []int64
	Readmitted []int64
	Executed   []int64
	// Pending is instantaneous per-tenant occupancy, not cumulative.
	Pending []int64
}

// Window records one controller decision for tracing.
type Window = ctl.Window[Sample, State]

// sub returns cur-prev element-wise in a fresh slice (prev may be nil
// on the first window).
func sub(prev, cur []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		out[i] = cur[i]
		if i < len(prev) {
			out[i] -= prev[i]
		}
	}
	return out
}

// clone deep-copies a snapshot so the loop's retained baseline cannot
// alias a driver's reused scratch slices.
func (c Cumulative) clone() Cumulative {
	cp := func(xs []int64) []int64 {
		out := make([]int64, len(xs))
		copy(out, xs)
		return out
	}
	return Cumulative{
		Arrived:    cp(c.Arrived),
		Admitted:   cp(c.Admitted),
		Deferred:   cp(c.Deferred),
		Shed:       cp(c.Shed),
		Readmitted: cp(c.Readmitted),
		Executed:   cp(c.Executed),
		Pending:    cp(c.Pending),
	}
}

// diffCumulative turns successive snapshots into one window's Sample.
func diffCumulative(prev, cur Cumulative) Sample {
	return Sample{
		Arrived:    sub(prev.Arrived, cur.Arrived),
		Admitted:   sub(prev.Admitted, cur.Admitted),
		Deferred:   sub(prev.Deferred, cur.Deferred),
		Shed:       sub(prev.Shed, cur.Shed),
		Readmitted: sub(prev.Readmitted, cur.Readmitted),
		Executed:   sub(prev.Executed, cur.Executed),
		Pending:    sub(nil, cur.Pending),
	}
}

// Controller is the stateful wrapper around Decide: a ctl.Loop that
// turns successive Cumulative snapshots into per-tenant quota
// decisions, starting ungated. Not safe for concurrent use — one
// goroutine (the scheduler's controller loop, or the simtest harness)
// drives it.
type Controller struct {
	cfg  Config
	loop *ctl.Loop[Cumulative, Sample, State]
}

// NewController validates cfg and returns a controller starting
// ungated: quotas only engage on evidence.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.loop = ctl.NewLoop(diffCumulative, func(cur State, s Sample) State {
		return Decide(c.cfg, cur, s)
	}, cfg.Open())
	return c, nil
}

// NewControllerSeeded is NewController starting from an explicit state
// instead of ungated. The live scheduler always starts ungated; this
// constructor exists for replaying captures that begin mid-session.
func NewControllerSeeded(cfg Config, seed State) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.loop = ctl.NewLoop(diffCumulative, func(cur State, s Sample) State {
		return Decide(c.cfg, cur, s)
	}, seed)
	return c, nil
}

// Config returns the validated configuration.
func (c *Controller) Config() Config { return c.cfg }

// State returns the policy currently in force.
func (c *Controller) State() State { return c.loop.State() }

// Prime sets the baseline snapshot subsequent Steps are differenced
// against, without taking a decision (see ctl.Loop.Prime).
func (c *Controller) Prime(cum Cumulative) { c.loop.Prime(cum.clone()) }

// Step closes one window: it differences cum against the previous
// snapshot, decides, and returns the decision record.
func (c *Controller) Step(at time.Duration, cum Cumulative) Window {
	return c.loop.Step(at, cum.clone())
}
